package sweep_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"runtime"
	"strings"
	"testing"

	"repro/internal/ckts"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/sweep"
)

// balancedTarget builds the paper's balanced mixer scaled to a 10 MHz LO so
// one QPSS job costs tens of milliseconds instead of paper-scale seconds.
func balancedTarget(p sweep.Point) (*sweep.Target, error) {
	cfg := ckts.BalancedMixerConfig{F1: 10e6, Fd: p.Fd, RFAmp: p.Amp}
	if cfg.Fd == 0 {
		cfg.Fd = 100e3
	}
	mix := ckts.NewBalancedMixer(cfg)
	return &sweep.Target{
		Ckt: mix.Ckt, Shear: mix.Shear,
		OutP: mix.OutP, OutM: mix.OutM, RFAmp: mix.Cfg.RFAmp,
	}, nil
}

// rcFdTarget drives an RC low-pass with a baseband tone at the difference
// frequency declared on the torus (mix (1, −1)), with the corner placed at
// fd so every method must report |H(j2πfd)| = 1/√2.
func rcFdTarget(p sweep.Point) (*sweep.Target, error) {
	fd := p.Fd
	if fd == 0 {
		fd = 1e5
	}
	amp := p.Amp
	if amp == 0 {
		amp = 1
	}
	sh := core.Shear{F1: 1e6, F2: 1e6 - fd, K: 1}
	w := device.Sine{Amp: amp, F1: sh.F1, F2: sh.F2, K1: 1, K2: -1}
	r := 1000.0
	ckt, out := ckts.RCLowpass(w, r, 1/(2*math.Pi*fd*r))
	return &sweep.Target{Ckt: ckt, Shear: sh, OutP: out, OutM: -1, RFAmp: amp}, nil
}

func TestGridPointsDeterministicOrder(t *testing.T) {
	g := sweep.Grid{Fd: []float64{1, 2}, Amp: []float64{0.1}, N1: []int{8, 16}, N2: []int{4}}
	pts := g.Points()
	want := []sweep.Point{
		{Fd: 1, Amp: 0.1, N1: 8, N2: 4},
		{Fd: 1, Amp: 0.1, N1: 16, N2: 4},
		{Fd: 2, Amp: 0.1, N1: 8, N2: 4},
		{Fd: 2, Amp: 0.1, N1: 16, N2: 4},
	}
	if len(pts) != len(want) {
		t.Fatalf("got %d points, want %d", len(pts), len(want))
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("point %d: got %+v want %+v", i, pts[i], want[i])
		}
	}
	if n := len((sweep.Grid{}).Points()); n != 1 {
		t.Fatalf("empty grid should expand to 1 default point, got %d", n)
	}
}

// TestSweepDeterministicAndFasterParallel is the PR's acceptance check: a
// ≥20-job QPSS sweep of the balanced mixer must produce byte-identical
// aggregated results with Workers=1 and Workers=NumCPU, and the parallel
// run must be measurably faster (asserted loosely here; measured precisely
// in BenchmarkSweepWorkers*).
func TestSweepDeterministicAndFasterParallel(t *testing.T) {
	spec := sweep.Spec{
		Name:    "acceptance",
		Methods: []sweep.Method{sweep.QPSS},
		Grid: sweep.Grid{
			Fd:  []float64{60e3, 80e3, 100e3, 120e3, 140e3},
			Amp: []float64{0.04, 0.05, 0.06, 0.07},
			N1:  []int{24},
			N2:  []int{16},
		},
		Build: balancedTarget,
	}
	spec.Workers = 1
	serial, err := sweep.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Workers = runtime.NumCPU()
	parallel, err := sweep.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	if len(serial.Jobs) < 20 {
		t.Fatalf("acceptance sweep must have ≥20 jobs, got %d", len(serial.Jobs))
	}
	for _, r := range []*sweep.Result{serial, parallel} {
		ok, failed, canceled := r.Counts()
		if failed != 0 || canceled != 0 || ok != len(r.Jobs) {
			t.Fatalf("workers=%d: ok=%d failed=%d canceled=%d errs=%v",
				r.Workers, ok, failed, canceled, r.Errors())
		}
	}
	for i := range serial.Jobs {
		if !serial.Jobs[i].GainValid {
			t.Fatalf("job %d: no conversion gain measured", i)
		}
		if g := serial.Jobs[i].Gain.Ratio; g < 0.1 || g > 100 {
			t.Fatalf("job %d: implausible gain %v", i, g)
		}
	}

	var a, b bytes.Buffer
	if err := serial.WriteCSV(&a, false); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteCSV(&b, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("aggregated CSV differs between workers=1 and workers=%d:\n--- serial ---\n%s\n--- parallel ---\n%s",
			parallel.Workers, a.String(), b.String())
	}
	a.Reset()
	b.Reset()
	if err := serial.WriteJSON(&a, false); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteJSON(&b, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("aggregated JSON differs between worker counts")
	}

	if runtime.NumCPU() >= 4 {
		if parallel.Wall >= serial.Wall {
			t.Errorf("parallel sweep (%v, %d workers) not faster than serial (%v)",
				parallel.Wall, parallel.Workers, serial.Wall)
		}
	} else {
		t.Logf("only %d CPUs; skipping the loose speedup assertion", runtime.NumCPU())
	}
	t.Logf("serial %v vs parallel %v on %d workers", serial.Wall, parallel.Wall, parallel.Workers)
}

// TestSweepMultiMethodOnLinearRC runs all five analyses at two grid points
// of a linear RC whose exact answer is known, and cross-checks the engine's
// per-method gain extraction paths against |H(j2πfd)| = 1/√2.
func TestSweepMultiMethodOnLinearRC(t *testing.T) {
	spec := sweep.Spec{
		Name: "rc-all-methods",
		Methods: []sweep.Method{
			sweep.QPSS, sweep.Envelope, sweep.Shooting, sweep.Transient, sweep.HB,
		},
		Grid: sweep.Grid{
			Fd: []float64{1e5, 2e5},
			N1: []int{16},
			N2: []int{32},
		},
		Build:     rcFdTarget,
		WarmStart: true,
		DiffT1:    core.Order2,
		DiffT2:    core.Order2,
	}
	res, err := sweep.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	ok, failed, canceled := res.Counts()
	if failed != 0 || canceled != 0 {
		t.Fatalf("ok=%d failed=%d canceled=%d errs=%v", ok, failed, canceled, res.Errors())
	}
	want := 1 / math.Sqrt2
	for i := range res.Jobs {
		jr := &res.Jobs[i]
		if jr.Job.Method == sweep.Envelope {
			if jr.GainValid {
				t.Fatalf("envelope jobs report swing only, got gain %+v", jr.Gain)
			}
			if jr.Swing <= 0 {
				t.Fatalf("envelope job %d: no baseband swing", jr.Job.ID)
			}
			continue
		}
		if !jr.GainValid {
			t.Fatalf("%s job %d: gain not measured", jr.Job.Method, jr.Job.ID)
		}
		if math.Abs(jr.Gain.Ratio-want) > 0.05*want {
			t.Fatalf("%s at fd=%g: gain %v, want %v ±5%%",
				jr.Job.Method, jr.Job.Point.Fd, jr.Gain.Ratio, want)
		}
	}
}

// TestSweepWarmStartSeedsFollowers checks that with WarmStart the follower
// jobs of a group converge in no more iterations than the cold leader, and
// that warm-started results stay deterministic across worker counts.
func TestSweepWarmStartSeedsFollowers(t *testing.T) {
	spec := sweep.Spec{
		Name:    "warm",
		Methods: []sweep.Method{sweep.QPSS},
		Grid: sweep.Grid{
			Fd: []float64{90e3, 100e3, 110e3, 120e3},
			N1: []int{20},
			N2: []int{12},
		},
		Build:     balancedTarget,
		WarmStart: true,
		Workers:   1,
	}
	warm, err := sweep.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, failed, canceled := warm.Counts(); failed+canceled != 0 {
		t.Fatalf("warm sweep failed: %v", warm.Errors())
	}
	leader := warm.Jobs[0]
	for _, jr := range warm.Jobs[1:] {
		if jr.NewtonIters > leader.NewtonIters {
			t.Errorf("follower fd=%g took %d iters > leader's %d — warm start not engaged?",
				jr.Job.Point.Fd, jr.NewtonIters, leader.NewtonIters)
		}
	}

	spec.Workers = runtime.NumCPU()
	warmPar, err := sweep.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := warm.WriteCSV(&a, false); err != nil {
		t.Fatal(err)
	}
	if err := warmPar.WriteCSV(&b, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("warm-started sweep not deterministic across worker counts")
	}
}

func TestSweepBuilderAndSpecErrors(t *testing.T) {
	if _, err := sweep.Run(context.Background(), sweep.Spec{}); err == nil {
		t.Fatal("nil Build must be rejected")
	}
	if _, err := sweep.Run(context.Background(), sweep.Spec{
		Build:   rcFdTarget,
		Methods: []sweep.Method{"warp-drive"},
	}); err == nil {
		t.Fatal("unknown method must be rejected")
	}
	spec := sweep.Spec{
		Build: func(p sweep.Point) (*sweep.Target, error) {
			return nil, context.DeadlineExceeded // any error will do
		},
		Grid: sweep.Grid{Fd: []float64{1e5, 2e5}},
	}
	res, err := sweep.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, failed, _ := res.Counts(); failed != 2 {
		t.Fatalf("builder errors must mark jobs failed, got %+v", res.Jobs)
	}

	// A panicking job (probe index out of range) fails alone instead of
	// taking down the sweep.
	panicky := sweep.Spec{
		Build: func(p sweep.Point) (*sweep.Target, error) {
			tgt, err := rcFdTarget(p)
			if err == nil && p.Fd > 1.5e5 {
				tgt.OutP = 10_000 // out of range → panic inside the analysis
			}
			return tgt, err
		},
		Grid:    sweep.Grid{Fd: []float64{1e5, 2e5}, N1: []int{8}, N2: []int{8}},
		Workers: 1,
	}
	res, err = sweep.Run(context.Background(), panicky)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].Status != sweep.StatusOK {
		t.Fatalf("healthy job must survive a sibling's panic: %+v", res.Jobs[0])
	}
	if res.Jobs[1].Status != sweep.StatusFailed || !strings.Contains(res.Jobs[1].Err, "panic") {
		t.Fatalf("panicking job must be marked failed with the panic message, got %+v", res.Jobs[1])
	}
}

func TestSweepExportShapes(t *testing.T) {
	spec := sweep.Spec{
		Name:    "export",
		Methods: []sweep.Method{sweep.QPSS},
		Grid:    sweep.Grid{Fd: []float64{1e5}, N1: []int{16}, N2: []int{16}},
		Build:   rcFdTarget,
		Workers: 1,
	}
	res, err := sweep.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf bytes.Buffer
	if err := res.WriteCSV(&csvBuf, true); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 1+len(res.Jobs) {
		t.Fatalf("CSV rows: got %d, want %d", len(lines), 1+len(res.Jobs))
	}
	if !strings.HasPrefix(lines[0], "id,method,fd") || !strings.HasSuffix(lines[0], "wall_ns,assembly_ns,factor_ns") {
		t.Fatalf("unexpected CSV header: %s", lines[0])
	}

	var jsonBuf bytes.Buffer
	if err := res.WriteJSON(&jsonBuf, true); err != nil {
		t.Fatal(err)
	}
	var back sweep.Result
	if err := json.Unmarshal(jsonBuf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "export" || len(back.Jobs) != len(res.Jobs) {
		t.Fatalf("JSON roundtrip lost data: %+v", back)
	}
	if back.Jobs[0].Wall == 0 {
		t.Fatal("timing JSON must include wall times")
	}
}

// TestSingleJobSpecKeepsParallelAssembly is the regression for the
// assemblyWorkers job-count bug: a spec holding exactly one job must produce
// byte-identical output whether the pool has one slot or eight — the
// single job is free to use the assembler's parallel default either way.
func TestSingleJobSpecKeepsParallelAssembly(t *testing.T) {
	run := func(workers int) []byte {
		spec := sweep.Spec{
			Name:    "single-job",
			Methods: []sweep.Method{sweep.QPSS},
			Grid:    sweep.Grid{Fd: []float64{100e3}, N1: []int{16}, N2: []int{12}},
			Build:   balancedTarget,
			Workers: workers,
		}
		res, err := sweep.Run(context.Background(), spec)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ok, failed, canceled := res.Counts(); ok != 1 || failed != 0 || canceled != 0 {
			t.Fatalf("workers=%d: ok=%d failed=%d canceled=%d errs=%v",
				workers, ok, failed, canceled, res.Errors())
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf, false); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	one, eight := run(1), run(8)
	if !bytes.Equal(one, eight) {
		t.Fatalf("single-job sweep diverged between Workers=1 and Workers=8:\n--- 1 ---\n%s\n--- 8 ---\n%s", one, eight)
	}
}

// TestSweepAdaptiveAccuracyCounters runs one adaptive QPSS and one adaptive
// envelope job and checks the tolerance-driven outcomes — refinement
// rounds, final grid sizes, accepted/rejected steps — surface in the job
// results and both byte-stable exports.
func TestSweepAdaptiveAccuracyCounters(t *testing.T) {
	spec := sweep.Spec{
		Name:    "adaptive",
		Methods: []sweep.Method{sweep.QPSS, sweep.Envelope},
		Grid:    sweep.Grid{Fd: []float64{100e3}},
		Build:   balancedTarget,
		Workers: 2,
		RelTol:  1e-3,
	}
	res, err := sweep.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if ok, failed, canceled := res.Counts(); ok != len(res.Jobs) {
		t.Fatalf("ok=%d failed=%d canceled=%d errs=%v", ok, failed, canceled, res.Errors())
	}
	var qpss, env *sweep.JobResult
	for i := range res.Jobs {
		switch res.Jobs[i].Job.Method {
		case sweep.QPSS:
			qpss = &res.Jobs[i]
		case sweep.Envelope:
			env = &res.Jobs[i]
		}
	}
	if qpss == nil || env == nil {
		t.Fatalf("missing jobs in %+v", res.Jobs)
	}
	if qpss.FinalN1 <= 0 || qpss.FinalN2 <= 0 {
		t.Errorf("adaptive qpss did not report its final grid: %+v", qpss)
	}
	if qpss.Refinements == 0 {
		t.Errorf("adaptive qpss reported no refinement rounds (started at the adaptive coarse grid)")
	}
	if env.AcceptedSteps == 0 {
		t.Errorf("adaptive envelope reported no accepted steps: %+v", env)
	}
	var csv, js bytes.Buffer
	if err := res.WriteCSV(&csv, false); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteJSON(&js, false); err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"accepted_steps", "rejected_steps", "refinements", "final_n1", "final_n2"} {
		if !strings.Contains(csv.String(), col) {
			t.Errorf("CSV header missing %q", col)
		}
	}
	if !strings.Contains(js.String(), `"final_n1"`) || !strings.Contains(js.String(), `"refinements"`) {
		t.Errorf("JSON export missing adaptive counters:\n%s", js.String())
	}
}
