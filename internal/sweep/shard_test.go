package sweep_test

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/sweep"
)

// shardSpec is a cheap multi-method sweep with warm-start groups: two QPSS
// grid shapes (two seedable groups) plus HB jobs sharing one of the shapes.
func shardSpec() sweep.Spec {
	return sweep.Spec{
		Name:      "shard-rc",
		WarmStart: true,
		JobList: []sweep.JobSpec{
			{Method: sweep.QPSS, Point: sweep.Point{Fd: 1e5, N1: 8, N2: 8}},
			{Method: sweep.QPSS, Point: sweep.Point{Fd: 1.2e5, N1: 8, N2: 8}},
			{Method: sweep.QPSS, Point: sweep.Point{Fd: 1e5, N1: 16, N2: 8}},
			{Method: sweep.QPSS, Point: sweep.Point{Fd: 1.2e5, N1: 16, N2: 8}},
			{Method: sweep.HB, Point: sweep.Point{Fd: 1e5, N1: 8, N2: 8}},
			{Method: sweep.HB, Point: sweep.Point{Fd: 1.2e5, N1: 8, N2: 8}},
		},
		Build: rcFdTarget,
	}
}

// TestShardsPartitionInvariants: every split is an exact cover of the job
// expansion, each shard is sorted and non-empty, and warm-start groups
// (method, N1, N2) never straddle a shard boundary — splitting one would
// change which job seeds the others and thus the Newton trajectories.
func TestShardsPartitionInvariants(t *testing.T) {
	spec := shardSpec()
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	for max := 1; max <= len(jobs)+2; max++ {
		shards, err := spec.Shards(max)
		if err != nil {
			t.Fatalf("Shards(%d): %v", max, err)
		}
		if len(shards) > max {
			t.Fatalf("Shards(%d) returned %d shards", max, len(shards))
		}
		seen := map[int]int{}
		group := map[[3]int64]int{} // groupKey → shard index
		for si, shard := range shards {
			if len(shard) == 0 {
				t.Fatalf("Shards(%d): shard %d empty", max, si)
			}
			for i, id := range shard {
				if i > 0 && shard[i-1] >= id {
					t.Fatalf("Shards(%d): shard %d not sorted: %v", max, si, shard)
				}
				if id < 0 || id >= len(jobs) {
					t.Fatalf("Shards(%d): id %d out of range", max, id)
				}
				seen[id]++
				j := jobs[id]
				if j.Method == sweep.QPSS || j.Method == sweep.HB {
					k := [3]int64{int64(len(j.Method)), int64(j.Point.N1), int64(j.Point.N2)}
					// Method length is a cheap stand-in only if unambiguous;
					// qpss(4) vs hb(2) differ, so it is here.
					if prev, ok := group[k]; ok && prev != si {
						t.Fatalf("Shards(%d): warm-start group %v split across shards %d and %d", max, k, prev, si)
					}
					group[k] = si
				}
			}
		}
		if len(seen) != len(jobs) {
			t.Fatalf("Shards(%d): covered %d of %d jobs", max, len(seen), len(jobs))
		}
		for id, n := range seen {
			if n != 1 {
				t.Fatalf("Shards(%d): job %d appears %d times", max, id, n)
			}
		}
	}
}

// TestShardedRunMergesByteIdentical is the shard layer's determinism
// contract: running each shard as a Subset run in its own engine
// invocation and merging must reproduce the single-run aggregate
// byte-for-byte in the timing-free serialisation.
func TestShardedRunMergesByteIdentical(t *testing.T) {
	spec := shardSpec()
	spec.Workers = 2
	full, err := sweep.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}

	shards, err := spec.Shards(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) < 2 {
		t.Fatalf("want ≥2 shards for a meaningful merge, got %d", len(shards))
	}
	parts := make([][]sweep.JobResult, len(shards))
	for i, ids := range shards {
		sub := spec
		sub.Subset = ids
		res, err := sweep.Run(context.Background(), sub)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if len(res.Jobs) != len(ids) {
			t.Fatalf("shard %d: got %d results for %d ids", i, len(res.Jobs), len(ids))
		}
		parts[i] = res.Jobs
	}
	merged, err := sweep.Merge(spec.Name, len(jobs), parts)
	if err != nil {
		t.Fatal(err)
	}

	var a, b bytes.Buffer
	if err := full.WriteJSON(&a, false); err != nil {
		t.Fatal(err)
	}
	if err := merged.WriteJSON(&b, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("sharded+merged JSON differs from single-run JSON:\n--- full ---\n%s\n--- merged ---\n%s", a.String(), b.String())
	}
}

// TestMergeRejectsBadCover: Merge must refuse overlapping, missing, or
// out-of-range job sets rather than serve a silently wrong aggregate.
func TestMergeRejectsBadCover(t *testing.T) {
	mk := func(ids ...int) []sweep.JobResult {
		out := make([]sweep.JobResult, len(ids))
		for i, id := range ids {
			out[i] = sweep.JobResult{Job: sweep.Job{ID: id, Method: sweep.QPSS}}
		}
		return out
	}
	cases := []struct {
		name  string
		total int
		parts [][]sweep.JobResult
	}{
		{"missing", 3, [][]sweep.JobResult{mk(0, 1)}},
		{"duplicate", 3, [][]sweep.JobResult{mk(0, 1), mk(1, 2)}},
		{"out of range", 2, [][]sweep.JobResult{mk(0, 2)}},
	}
	for _, tc := range cases {
		if _, err := sweep.Merge("x", tc.total, tc.parts); err == nil {
			t.Errorf("%s: Merge accepted a bad cover", tc.name)
		}
	}
	if res, err := sweep.Merge("x", 3, [][]sweep.JobResult{mk(2), mk(0, 1)}); err != nil {
		t.Errorf("valid cover rejected: %v", err)
	} else {
		for i, jr := range res.Jobs {
			if jr.Job.ID != i {
				t.Errorf("merged jobs not ordered by ID: %v", res.Jobs)
			}
		}
	}
}
