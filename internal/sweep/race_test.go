package sweep_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/ckts"
	"repro/internal/sweep"
)

// TestSweepSharedCircuitState runs a multi-method grid where the builder
// deliberately hands every job the SAME circuit instance. After the
// engine's serialised finalisation the circuit and its devices are
// read-only and each analysis allocates a private Eval workspace, so this
// must be race-free — `go test -race ./internal/sweep/` is the check.
func TestSweepSharedCircuitState(t *testing.T) {
	mix := ckts.NewBalancedMixer(ckts.BalancedMixerConfig{F1: 10e6, Fd: 100e3})
	shared := &sweep.Target{
		Ckt: mix.Ckt, Shear: mix.Shear,
		OutP: mix.OutP, OutM: mix.OutM, RFAmp: mix.Cfg.RFAmp,
	}
	spec := sweep.Spec{
		Name:    "shared-circuit",
		Methods: []sweep.Method{sweep.QPSS, sweep.Envelope, sweep.Shooting},
		Grid: sweep.Grid{
			N1: []int{12, 16},
			N2: []int{8},
		},
		Build:   func(sweep.Point) (*sweep.Target, error) { return shared, nil },
		Workers: 4,
	}
	res, err := sweep.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	ok, failed, canceled := res.Counts()
	if failed != 0 || canceled != 0 {
		t.Fatalf("shared-circuit sweep: ok=%d failed=%d canceled=%d errs=%v",
			ok, failed, canceled, res.Errors())
	}
	// All jobs probed the same physical mixer: every QPSS job must agree
	// on the sign and rough size of the baseband swing.
	for i := range res.Jobs {
		if res.Jobs[i].Job.Method == sweep.QPSS && res.Jobs[i].Swing <= 0 {
			t.Fatalf("job %d: no baseband swing on shared circuit", i)
		}
	}
}

// TestSweepCancelReturnsPromptly proves a mid-sweep context cancel unwinds
// quickly — through the Newton-level Interrupt hook, not just between jobs —
// and that the partial aggregate is still well-formed and ordered.
func TestSweepCancelReturnsPromptly(t *testing.T) {
	spec := sweep.Spec{
		Name:    "cancel",
		Methods: []sweep.Method{sweep.QPSS},
		Grid: sweep.Grid{
			Fd: []float64{60e3, 70e3, 80e3, 90e3, 100e3, 110e3, 120e3, 130e3},
			N1: []int{24},
			N2: []int{16},
		},
		Build:   balancedTarget,
		Workers: 2,
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	res, err := sweep.Run(ctx, spec)
	elapsed := time.Since(t0)
	if err != context.Canceled {
		t.Fatalf("Run must surface ctx.Err(), got %v", err)
	}
	if res == nil {
		t.Fatal("cancelled Run must still return the partial result")
	}
	// Each job takes ~200 ms; with in-solve interruption the whole sweep
	// must unwind well before the ~1.6 s it would need to drain serially.
	if elapsed > 1200*time.Millisecond {
		t.Fatalf("cancel took %v to unwind — in-solve interrupt not working", elapsed)
	}
	if len(res.Jobs) != 8 {
		t.Fatalf("partial result must keep all job slots, got %d", len(res.Jobs))
	}
	_, _, canceled := res.Counts()
	if canceled == 0 {
		t.Fatal("expected at least one canceled job")
	}
	for i := range res.Jobs {
		if res.Jobs[i].Job.ID != i {
			t.Fatalf("partial results out of order at %d: %+v", i, res.Jobs[i].Job)
		}
		switch res.Jobs[i].Status {
		case sweep.StatusOK, sweep.StatusCanceled:
		default:
			t.Fatalf("job %d: unexpected status %s (%s)", i, res.Jobs[i].Status, res.Jobs[i].Err)
		}
	}
	t.Logf("cancel unwound in %v with %d/8 jobs canceled", elapsed, canceled)
}

// TestSweepJobTimeout gives each job a deadline far below its runtime and
// expects per-job timeouts without failing the sweep as a whole.
func TestSweepJobTimeout(t *testing.T) {
	spec := sweep.Spec{
		Name:       "timeout",
		Methods:    []sweep.Method{sweep.QPSS},
		Grid:       sweep.Grid{Fd: []float64{100e3}, N1: []int{24}, N2: []int{16}},
		Build:      balancedTarget,
		Workers:    1,
		JobTimeout: 10 * time.Millisecond,
	}
	res, err := sweep.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("job timeouts must not fail the sweep: %v", err)
	}
	if res.Jobs[0].Status != sweep.StatusTimeout {
		t.Fatalf("want status timeout, got %s (%s)", res.Jobs[0].Status, res.Jobs[0].Err)
	}
}
