package sweep

import (
	"runtime"
	"testing"
)

// TestAssemblyWorkersJobCountAware pins the oversubscription policy to the
// pool's *effective* parallelism min(Workers, jobs): a spec with one job
// must keep the assembler's default (all cores) no matter how many idle
// pool slots it configured — the historical bug serialized QPSS assembly on
// many-core hosts whenever Workers > 1, even for a single job.
func TestAssemblyWorkersJobCountAware(t *testing.T) {
	cases := []struct {
		workers, nJobs, want int
	}{
		{8, 1, 0}, // single job: idle pool slots must not serialize assembly
		{2, 1, 0},
		{8, 2, 1}, // two concurrent jobs already fill the cores
		{8, 8, 1},
		{1, 4, 0}, // single-worker pool: jobs run one at a time
		{0, 1, 0}, // NumCPU pool, one job
	}
	for _, c := range cases {
		s := &Spec{Workers: c.workers}
		if got := s.assemblyWorkers(c.nJobs); got != c.want {
			t.Errorf("Workers=%d nJobs=%d: assemblyWorkers=%d, want %d",
				c.workers, c.nJobs, got, c.want)
		}
	}
	// Default pool with several jobs follows the core count.
	s := &Spec{}
	want := 1
	if runtime.NumCPU() == 1 {
		want = 0
	}
	if got := s.assemblyWorkers(4); got != want {
		t.Errorf("Workers=0 nJobs=4 on %d cores: assemblyWorkers=%d, want %d",
			runtime.NumCPU(), got, want)
	}
}
