// Package shooting computes the periodic steady state (PSS) of a circuit
// driven at a single fundamental by the Aprille–Trick shooting method: find
// x0 with Φ_T(x0) = x0, where Φ_T is the state-transition map over one period
// integrated with fixed-step backward Euler. The sensitivity (monodromy)
// matrix M = ∂Φ_T/∂x0 is accumulated step by step through the chain rule
//
//	∂x_n/∂x_{n−1} = (C_n/h + G_n)⁻¹ · C_{n−1}/h
//
// and Newton updates solve (M − I)·Δ = −(Φ(x0) − x0). A matrix-free variant
// approximates (M − I)·v by finite-difference re-integration and solves the
// update with GMRES — the configuration of Telichevesky et al. that the
// paper cites as the fastest conventional baseline.
//
// This package is the paper's principal CPU-time comparison target: shooting
// "across one period of the difference frequency … with 10 or more time-steps
// per LO period" costs O(disparity) integrations, which is what the MPDE
// method eliminates.
package shooting

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/la"
	"repro/internal/solver"
	"repro/internal/transient"
)

// Options configures a PSS run.
type Options struct {
	// Period is the steady-state period T (required).
	Period float64
	// Steps is the number of fixed BE steps per period (default 200).
	Steps int
	// MaxIter caps shooting-Newton iterations (default 40).
	MaxIter int
	// Tol is the ∞-norm tolerance on Φ(x0) − x0 (default 1e-7).
	Tol float64
	// MatrixFree selects finite-difference/GMRES instead of the dense
	// monodromy accumulation.
	MatrixFree bool
	// X0 is the starting guess; nil → DC operating point.
	X0 []float64
	// Newton configures the inner per-timestep solves.
	Newton solver.Options
	// Damping scales the shooting update (default 1).
	Damping float64
}

// Result reports the periodic steady state.
type Result struct {
	// X0 is the state at t = 0 on the periodic orbit.
	X0 []float64
	// Orbit samples one full period starting from X0 (Steps+1 points).
	Orbit *transient.Result
	// Iterations is the number of shooting-Newton iterations.
	Iterations int
	// FinalError is ‖Φ(x0) − x0‖∞ at acceptance.
	FinalError float64
	// TotalTimeSteps counts all BE steps taken, the paper's cost metric.
	TotalTimeSteps int
	// Monodromy is ∂Φ_T/∂x0 at the solution (dense mode only; nil in
	// matrix-free mode). Its eigenvalues are the Floquet multipliers.
	Monodromy *la.Dense
}

// FloquetMultipliers returns the eigenvalues of the monodromy matrix. The
// orbit is asymptotically stable when every multiplier lies strictly inside
// the unit circle (algebraic MNA constraints contribute near-zero
// multipliers).
func (r *Result) FloquetMultipliers() ([]complex128, error) {
	if r.Monodromy == nil {
		return nil, errors.New("shooting: monodromy unavailable (matrix-free mode)")
	}
	return la.Eigenvalues(r.Monodromy)
}

// Stable reports whether all Floquet multipliers are inside the unit circle
// with the given margin (e.g. 1e-6).
func (r *Result) Stable(margin float64) (bool, error) {
	rad, err := r.spectralRadius()
	if err != nil {
		return false, err
	}
	return rad < 1-margin, nil
}

func (r *Result) spectralRadius() (float64, error) {
	if r.Monodromy == nil {
		return 0, errors.New("shooting: monodromy unavailable (matrix-free mode)")
	}
	return la.SpectralRadius(r.Monodromy)
}

// ErrNoConvergence is returned when shooting-Newton stalls.
var ErrNoConvergence = errors.New("shooting: Newton on the periodicity condition did not converge")

type integrator struct {
	ctx   context.Context
	ckt   *circuit.Circuit
	ev    *circuit.Eval
	n     int
	h     float64
	steps int
	opt   solver.Options
}

// propagate integrates one period from x0. When wantM is set it also
// accumulates the dense monodromy matrix; when record is set it stores the
// trajectory.
func (g *integrator) propagate(x0 []float64, wantM, record bool, t0 float64) ([]float64, *la.Dense, *transient.Result, int, error) {
	n := g.n
	x := append([]float64(nil), x0...)
	var m *la.Dense
	if wantM {
		m = la.Eye(n)
	}
	var orbit *transient.Result
	if record {
		orbit = &transient.Result{}
		orbit.T = append(orbit.T, t0)
		orbit.X = append(orbit.X, append([]float64(nil), x...))
	}
	// Evaluate C at the starting point for the first sensitivity step.
	res := g.ev.EvalAt(x, device.EvalCtx{T: t0, Lambda: 1}, wantM)
	qPrev := append([]float64(nil), res.Q...)
	var cPrev *la.CSR
	if wantM {
		cPrev = res.C
	}
	totalSteps := 0
	for k := 1; k <= g.steps; k++ {
		tNew := t0 + float64(k)*g.h
		qp := qPrev
		sys := solver.FuncSystem{N: n, F: func(xx []float64, jac bool) ([]float64, *la.CSR, error) {
			r := g.ev.EvalAt(xx, device.EvalCtx{T: tNew, Lambda: 1}, jac)
			out := make([]float64, n)
			for i := range out {
				out[i] = (r.Q[i]-qp[i])/g.h + r.F[i] + r.B[i]
			}
			var j *la.CSR
			if jac {
				j = combine(r.C, r.G, 1/g.h)
			}
			return out, j, nil
		}}
		if _, err := solver.Solve(g.ctx, sys, x, g.opt); err != nil {
			return nil, nil, nil, totalSteps, fmt.Errorf("shooting: step %d (t=%.3e) failed: %w", k, tNew, err)
		}
		totalSteps++
		// Post-solve evaluation for q, C, G at the accepted point.
		r := g.ev.EvalAt(x, device.EvalCtx{T: tNew, Lambda: 1}, wantM)
		qPrev = append(qPrev[:0], r.Q...)
		if wantM {
			// M ← (C/h + G)⁻¹ · (Cprev/h) · M.
			a := combine(r.C, r.G, 1/g.h)
			f, err := la.SparseLUFactor(a, 0.001)
			if err != nil {
				return nil, nil, nil, totalSteps, fmt.Errorf("shooting: sensitivity factorisation failed at step %d: %w", k, err)
			}
			w := la.NewDense(n, n)
			// w = (Cprev/h)·M  (sparse × dense, row by row).
			for i := 0; i < n; i++ {
				for p := cPrev.RowPtr[i]; p < cPrev.RowPtr[i+1]; p++ {
					cij := cPrev.Val[p] / g.h
					mrow := m.Row(cPrev.ColIdx[p])
					wrow := w.Row(i)
					for c := 0; c < n; c++ {
						wrow[c] += cij * mrow[c]
					}
				}
			}
			// Solve column-wise into the new M.
			col := make([]float64, n)
			out := make([]float64, n)
			for c := 0; c < n; c++ {
				for i := 0; i < n; i++ {
					col[i] = w.At(i, c)
				}
				f.Solve(col, out)
				for i := 0; i < n; i++ {
					m.Set(i, c, out[i])
				}
			}
			cPrev = r.C
		}
		if record {
			orbit.T = append(orbit.T, tNew)
			orbit.X = append(orbit.X, append([]float64(nil), x...))
		}
	}
	return x, m, orbit, totalSteps, nil
}

func combine(c, g *la.CSR, cScale float64) *la.CSR {
	tr := la.NewTriplet(g.Rows, g.Cols)
	for i := 0; i < g.Rows; i++ {
		for k := g.RowPtr[i]; k < g.RowPtr[i+1]; k++ {
			tr.Append(i, g.ColIdx[k], g.Val[k])
		}
	}
	for i := 0; i < c.Rows; i++ {
		for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
			tr.Append(i, c.ColIdx[k], cScale*c.Val[k])
		}
	}
	return tr.Compress()
}

// PSS computes the periodic steady state. Cancelling ctx aborts the
// per-timestep Newton solves cooperatively; an already-canceled context
// returns ctx.Err() before any integration work.
func PSS(ctx context.Context, ckt *circuit.Circuit, opt Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opt.Period <= 0 {
		return nil, errors.New("shooting: Period must be positive")
	}
	if opt.Steps <= 0 {
		opt.Steps = 200
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 40
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-7
	}
	if opt.Damping <= 0 || opt.Damping > 1 {
		opt.Damping = 1
	}
	// Merge the inner-solve Newton defaults non-destructively: a caller who
	// sets Linear or PivotTol but leaves MaxIter zero keeps them (a zero
	// MaxIter also opts into damping, the analysis default).
	if opt.Newton.MaxIter == 0 {
		opt.Newton.Damping = true
	}
	opt.Newton.Fill()
	ckt.Finalize()
	n := ckt.Size()

	x0 := make([]float64, n)
	if opt.X0 != nil {
		if len(opt.X0) != n {
			return nil, fmt.Errorf("shooting: X0 size %d, want %d", len(opt.X0), n)
		}
		copy(x0, opt.X0)
	} else {
		xdc, _, err := transient.DC(ctx, ckt, transient.DCOptions{})
		if err != nil {
			return nil, fmt.Errorf("shooting: DC start failed: %w", err)
		}
		copy(x0, xdc)
	}

	g := &integrator{ctx: ctx, ckt: ckt, ev: ckt.NewEval(), n: n,
		h: opt.Period / float64(opt.Steps), steps: opt.Steps, opt: opt.Newton}

	res := &Result{}
	for it := 0; it < opt.MaxIter; it++ {
		res.Iterations = it + 1
		xT, m, _, steps, err := g.propagate(x0, !opt.MatrixFree, false, 0)
		res.TotalTimeSteps += steps
		if err != nil {
			return res, err
		}
		// Periodicity residual r = Φ(x0) − x0.
		r := make([]float64, n)
		for i := range r {
			r[i] = xT[i] - x0[i]
		}
		res.FinalError = la.NormInf(r)
		if res.FinalError <= opt.Tol {
			// Record the converged orbit and keep the monodromy for
			// Floquet-stability queries.
			res.Monodromy = m
			_, _, orbit, steps2, err := g.propagate(x0, false, true, 0)
			res.TotalTimeSteps += steps2
			if err != nil {
				return res, err
			}
			res.X0 = x0
			res.Orbit = orbit
			return res, nil
		}
		var dx []float64
		if opt.MatrixFree {
			dx, err = matrixFreeUpdate(g, x0, xT, r, opt)
			res.TotalTimeSteps += opt.Steps * 12 // approximate matvec cost bookkeeping
		} else {
			// Solve (M − I)·dx = −r with dense LU.
			a := m.Clone()
			for i := 0; i < n; i++ {
				a.Add(i, i, -1)
			}
			neg := make([]float64, n)
			for i := range neg {
				neg[i] = -r[i]
			}
			dx, err = la.SolveDense(a, neg)
		}
		if err != nil {
			return res, fmt.Errorf("shooting: update solve failed: %w", err)
		}
		la.Axpy(opt.Damping, dx, x0)
	}
	return res, fmt.Errorf("%w after %d iterations (‖Φ(x0)−x0‖ = %.3e)",
		ErrNoConvergence, res.Iterations, res.FinalError)
}

// matrixFreeUpdate solves (M − I)·dx = −r by GMRES with finite-difference
// monodromy application: M·v ≈ (Φ(x0+εv) − Φ(x0))/ε.
func matrixFreeUpdate(g *integrator, x0, phi, r []float64, opt Options) ([]float64, error) {
	n := g.n
	op := &fdOperator{g: g, x0: x0, phi: phi}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = -r[i]
	}
	dx := make([]float64, n)
	_, err := la.GMRES(op, rhs, dx, la.GMRESOptions{Tol: 1e-8, Restart: min(n, 40), MaxIter: 4 * n})
	if err != nil {
		return nil, err
	}
	return dx, nil
}

type fdOperator struct {
	g   *integrator
	x0  []float64
	phi []float64
}

func (o *fdOperator) Size() int { return o.g.n }

func (o *fdOperator) Apply(v, out []float64) {
	n := o.g.n
	nv := la.Norm2(v)
	if nv == 0 {
		la.Fill(out, 0)
		return
	}
	eps := 1e-7 * (1 + la.Norm2(o.x0)) / nv
	xp := make([]float64, n)
	for i := range xp {
		xp[i] = o.x0[i] + eps*v[i]
	}
	phiP, _, _, _, err := o.g.propagate(xp, false, false, 0)
	if err != nil {
		// Signal failure through a zero application; GMRES will stagnate
		// and the caller surfaces the non-convergence.
		la.Fill(out, 0)
		return
	}
	for i := range out {
		out[i] = (phiP[i]-o.phi[i])/eps - v[i] // (M − I)·v
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
