package shooting

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/transient"
)

// rcDriven returns a sine-driven RC low-pass and its element values.
func rcDriven(f float64) (*circuit.Circuit, float64, float64) {
	r, c := 1000.0, 1e-6
	ckt := circuit.New("rc-pss")
	ckt.V("V1", "in", "0", device.Sine{Amp: 1, F1: f, K1: 1})
	ckt.R("R1", "in", "out", r)
	ckt.C("C1", "out", "0", c)
	return ckt, r, c
}

func TestPSSLinearRCMatchesAnalytic(t *testing.T) {
	f := 500.0
	ckt, r, c := rcDriven(f)
	res, err := PSS(context.Background(), ckt, Options{Period: 1 / f, Steps: 400})
	if err != nil {
		t.Fatal(err)
	}
	// Analytic: |H| = 1/√(1+(ωRC)²), phase = −atan(ωRC).
	w := 2 * math.Pi * f
	gain := 1 / math.Sqrt(1+w*r*c*w*r*c)
	phase := -math.Atan(w * r * c)
	out, _ := ckt.NodeIndex("out")
	for k, tt := range res.Orbit.T {
		want := gain * math.Cos(w*tt+phase)
		if math.Abs(res.Orbit.X[k][out]-want) > 0.01 {
			t.Fatalf("t=%g: pss %v vs analytic %v", tt, res.Orbit.X[k][out], want)
		}
	}
}

func TestPSSPeriodicityResidual(t *testing.T) {
	f := 1000.0
	ckt, _, _ := rcDriven(f)
	res, err := PSS(context.Background(), ckt, Options{Period: 1 / f, Steps: 256, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalError > 1e-9 {
		t.Fatalf("periodicity error %v", res.FinalError)
	}
	first := res.Orbit.X[0]
	last := res.Orbit.X[len(res.Orbit.X)-1]
	for i := range first {
		if math.Abs(first[i]-last[i]) > 1e-7 {
			t.Fatalf("orbit not closed at unknown %d: %v vs %v", i, first[i], last[i])
		}
	}
}

func TestPSSConvergesInFewIterationsLinear(t *testing.T) {
	// For a linear circuit, shooting-Newton is exact in ONE iteration.
	f := 1000.0
	ckt, _, _ := rcDriven(f)
	res, err := PSS(context.Background(), ckt, Options{Period: 1 / f, Steps: 128})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 2 {
		t.Fatalf("linear shooting took %d iterations, want ≤ 2", res.Iterations)
	}
}

func TestPSSRectifierMatchesLongTransient(t *testing.T) {
	build := func() *circuit.Circuit {
		ckt := circuit.New("rect-pss")
		f := 1e3
		ckt.V("V1", "in", "0", device.Sine{Amp: 5, F1: f, K1: 1})
		ckt.D("D1", "in", "out", 1e-14)
		ckt.R("RL", "out", "0", 10e3)
		ckt.C("CL", "out", "0", 2e-7)
		return ckt
	}
	f := 1e3
	ckt := build()
	res, err := PSS(context.Background(), ckt, Options{Period: 1 / f, Steps: 512, Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	// Long transient reference (20 periods reaches steady state, τ = 2 ms).
	ckt2 := build()
	tr, err := transient.Run(context.Background(), ckt2, transient.Options{
		Method: transient.BE, TStop: 30e-3, Step: 1 / f / 512, FixedStep: true})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := ckt.NodeIndex("out")
	// Compare at matching phases over the final transient period.
	for k := 0; k <= 8; k++ {
		phase := float64(k) / 8
		tRef := 29e-3 + phase/f
		ref := tr.At(tRef, nil)[out]
		got := res.Orbit.At(phase/f, nil)[out]
		if math.Abs(got-ref) > 0.05 {
			t.Fatalf("phase %.2f: pss %v vs transient %v", phase, got, ref)
		}
	}
	if res.TotalTimeSteps >= tr.Steps {
		t.Fatalf("shooting (%d steps) should beat brute-force transient (%d steps)",
			res.TotalTimeSteps, tr.Steps)
	}
}

func TestPSSMatrixFreeAgreesWithDense(t *testing.T) {
	f := 1e3
	ckt, _, _ := rcDriven(f)
	dense, err := PSS(context.Background(), ckt, Options{Period: 1 / f, Steps: 128})
	if err != nil {
		t.Fatal(err)
	}
	ckt2, _, _ := rcDriven(f)
	free, err := PSS(context.Background(), ckt2, Options{Period: 1 / f, Steps: 128, MatrixFree: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range dense.X0 {
		if math.Abs(dense.X0[i]-free.X0[i]) > 1e-5 {
			t.Fatalf("x0[%d]: dense %v vs matrix-free %v", i, dense.X0[i], free.X0[i])
		}
	}
}

func TestPSSNonlinearMixerlikeCircuit(t *testing.T) {
	// A MOSFET common-source stage driven hard — strongly nonlinear PSS.
	f := 10e6
	ckt := circuit.New("cs-pss")
	ckt.V("VDD", "vdd", "0", device.DC(3))
	ckt.V("VG", "g", "0", device.Sum{device.DC(0.8), device.Sine{Amp: 0.7, F1: f, K1: 1}})
	ckt.R("RD", "vdd", "d", 5e3)
	ckt.C("CD", "d", "0", 2e-12)
	ckt.M("M1", "d", "g", "0", device.MOSFET{Vt0: 0.5, KP: 1e-3})
	res, err := PSS(context.Background(), ckt, Options{Period: 1 / f, Steps: 256, Tol: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	d, _ := ckt.NodeIndex("d")
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, x := range res.Orbit.X {
		if x[d] < minV {
			minV = x[d]
		}
		if x[d] > maxV {
			maxV = x[d]
		}
	}
	// The stage must actually switch: large output swing, bounded by rails.
	if maxV > 3.01 || minV < -0.01 {
		t.Fatalf("drain voltage out of rails: [%v, %v]", minV, maxV)
	}
	if maxV-minV < 0.5 {
		t.Fatalf("swing too small (%v) — stage not exercised", maxV-minV)
	}
}

func TestPSSInvalidOptions(t *testing.T) {
	ckt, _, _ := rcDriven(1e3)
	if _, err := PSS(context.Background(), ckt, Options{Period: 0}); err == nil {
		t.Fatal("expected error for zero period")
	}
	ckt2, _, _ := rcDriven(1e3)
	if _, err := PSS(context.Background(), ckt2, Options{Period: 1e-3, X0: make([]float64, 1)}); err == nil {
		t.Fatal("expected error for bad X0 size")
	}
}

func TestFloquetMultipliersLinearRC(t *testing.T) {
	// For the driven RC, the single dynamic state has multiplier
	// exp(−T/RC); the algebraic unknowns (source node, branch current)
	// contribute ~0 multipliers.
	f := 1e3
	r, c := 1000.0, 1e-6
	ckt, _, _ := rcDriven(f)
	res, err := PSS(context.Background(), ckt, Options{Period: 1 / f, Steps: 2048})
	if err != nil {
		t.Fatal(err)
	}
	eig, err := res.FloquetMultipliers()
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-1 / (f * r * c))
	found := false
	for _, l := range eig {
		if math.Abs(real(l)-want) < 0.01 && math.Abs(imag(l)) < 1e-6 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no multiplier near %v in %v", want, eig)
	}
	stable, err := res.Stable(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if !stable {
		t.Fatal("driven RC orbit must be stable")
	}
}

func TestFloquetUnavailableMatrixFree(t *testing.T) {
	f := 1e3
	ckt, _, _ := rcDriven(f)
	res, err := PSS(context.Background(), ckt, Options{Period: 1 / f, Steps: 128, MatrixFree: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.FloquetMultipliers(); err == nil {
		t.Fatal("matrix-free mode should not expose a monodromy")
	}
}

func TestFloquetNonlinearMixerStable(t *testing.T) {
	f := 10e6
	ckt := circuit.New("cs-floquet")
	ckt.V("VDD", "vdd", "0", device.DC(3))
	ckt.V("VG", "g", "0", device.Sum{device.DC(0.8), device.Sine{Amp: 0.7, F1: f, K1: 1}})
	ckt.R("RD", "vdd", "d", 5e3)
	ckt.C("CD", "d", "0", 2e-12)
	ckt.M("M1", "d", "g", "0", device.MOSFET{Vt0: 0.5, KP: 1e-3})
	res, err := PSS(context.Background(), ckt, Options{Period: 1 / f, Steps: 256})
	if err != nil {
		t.Fatal(err)
	}
	stable, err := res.Stable(1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !stable {
		eig, _ := res.FloquetMultipliers()
		t.Fatalf("forced mixer orbit should be stable; multipliers %v", eig)
	}
}

// TestPSSHonorsCanceledContext: a canceled context must abort the inner
// per-timestep solves before any integration work.
func TestPSSHonorsCanceledContext(t *testing.T) {
	f := 1000.0
	ckt, _, _ := rcDriven(f)
	var opt Options
	opt.Period = 1 / f
	opt.Steps = 64
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := PSS(ctx, ckt, opt)
	if err == nil {
		t.Fatal("PSS converged despite a canceled context")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
