package circuit

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/la"
)

func TestNodeInterningAndGround(t *testing.T) {
	c := New("t")
	if c.Node("0") != -1 || c.Node("gnd") != -1 {
		t.Fatal("ground aliases must map to -1")
	}
	a := c.Node("a")
	b := c.Node("b")
	if a != 0 || b != 1 {
		t.Fatalf("node indices: a=%d b=%d", a, b)
	}
	if c.Node("a") != 0 {
		t.Fatal("re-interning must return the same index")
	}
	if got, err := c.NodeIndex("b"); err != nil || got != 1 {
		t.Fatalf("NodeIndex(b) = %d, %v", got, err)
	}
	if _, err := c.NodeIndex("zz"); err == nil {
		t.Fatal("unknown node should error")
	}
	names := c.NodeNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("NodeNames = %v", names)
	}
}

func TestFinalizeAssignsBranches(t *testing.T) {
	c := New("t")
	c.V("V1", "in", "0", device.DC(1))
	c.L("L1", "in", "out", 1e-6)
	c.R("R1", "out", "0", 50)
	c.Finalize()
	// 2 nodes + 2 branches (V, L).
	if c.Size() != 4 {
		t.Fatalf("Size = %d, want 4", c.Size())
	}
	if c.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d", c.NumNodes())
	}
}

func TestEvalResistiveDividerResidual(t *testing.T) {
	// V1 5V → R1 1k → mid → R2 1k → gnd. At the true solution the residual
	// (excluding numerical noise) must vanish.
	c := New("divider")
	c.V("V1", "in", "0", device.DC(5))
	c.R("R1", "in", "mid", 1000)
	c.R("R2", "mid", "0", 1000)
	c.Finalize()
	ev := c.NewEval()
	in, _ := c.NodeIndex("in")
	mid, _ := c.NodeIndex("mid")
	x := make([]float64, c.Size())
	x[in] = 5
	x[mid] = 2.5
	x[2] = -2.5e-3 // source branch current (flows out of +)
	res := ev.EvalAt(x, device.FullDrive(), true)
	r := res.Residual(nil)
	if la.NormInf(r) > 1e-8 {
		t.Fatalf("residual at exact solution: %v", r)
	}
	if res.G == nil || res.C == nil {
		t.Fatal("Jacobians requested but missing")
	}
}

func TestEvalGminStampedOnDiagonal(t *testing.T) {
	c := New("gmin")
	c.Gmin = 1e-3 // exaggerate to observe
	c.R("R1", "a", "b", 1e9)
	c.Finalize()
	ev := c.NewEval()
	x := []float64{1, 0}
	res := ev.EvalAt(x, device.FullDrive(), true)
	// f[a] should include gmin·v(a) = 1e-3.
	if math.Abs(res.F[0]-1e-3-1e-9) > 1e-12 {
		t.Fatalf("gmin current missing: %v", res.F[0])
	}
	if g := res.G.At(0, 0); math.Abs(g-1e-3-1e-9) > 1e-12 {
		t.Fatalf("gmin conductance missing from G: %v", g)
	}
}

func TestKCLPropertyRowSumsZeroWithoutGroundDevices(t *testing.T) {
	// For a circuit whose every element connects two non-ground nodes, each
	// column of G sums to zero (KCL conservation) over node rows.
	c := New("kcl")
	c.Gmin = 0
	c.R("R1", "a", "b", 100)
	c.R("R2", "b", "c", 200)
	c.C("C1", "a", "c", 1e-9)
	c.Finalize()
	ev := c.NewEval()
	x := []float64{1, 2, 3}
	res := ev.EvalAt(x, device.FullDrive(), true)
	g := res.G.Dense()
	for j := 0; j < 3; j++ {
		sum := 0.0
		for i := 0; i < 3; i++ {
			sum += g.At(i, j)
		}
		if math.Abs(sum) > 1e-15 {
			t.Fatalf("G column %d sums to %v, violating KCL", j, sum)
		}
	}
	// Residual currents also sum to zero.
	if s := res.F[0] + res.F[1] + res.F[2]; math.Abs(s) > 1e-18 {
		t.Fatalf("node currents sum to %v", s)
	}
}

func TestNonTorusSources(t *testing.T) {
	c := New("torus-check")
	c.V("VDD", "vdd", "0", device.DC(3))
	c.V("VLO", "lo", "0", device.Sine{Amp: 1, F1: 1e9, K1: 1})
	c.V("VP", "p", "0", device.Pulse{V2: 1, Width: 1, Period: 2})
	c.Finalize()
	bad := c.NonTorusSources()
	if len(bad) != 1 || bad[0] != "VP" {
		t.Fatalf("NonTorusSources = %v, want [VP]", bad)
	}
}

func TestAddAfterFinalizePanics(t *testing.T) {
	c := New("t")
	c.R("R1", "a", "0", 1)
	c.Finalize()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.R("R2", "b", "0", 1)
}

func TestEvalTorusContext(t *testing.T) {
	// A torus-declared sine source evaluated in torus mode must use the
	// provided phases, not T.
	c := New("torus")
	c.V("V1", "a", "0", device.Sine{Amp: 2, F1: 1e9, K1: 1})
	c.Finalize()
	ev := c.NewEval()
	x := make([]float64, c.Size())
	ctx := device.EvalCtx{Torus: true, Th1: 0.25, Th2: 0, Lambda: 1}
	res := ev.EvalAt(x, ctx, false)
	// cos(2π·0.25) = 0, so b at the branch equation should be ~0.
	br := c.Size() - 1
	if math.Abs(res.B[br]) > 1e-12 {
		t.Fatalf("torus phase not honoured: B=%v", res.B[br])
	}
}

func TestBuilderHelpers(t *testing.T) {
	c := New("builders")
	c.D("D1", "a", "0", 1e-14)
	c.M("M1", "d", "g", "s", device.MOSFET{Vt0: 0.5, KP: 1e-4})
	c.Gm("G1", "o", "0", "a", "0", 1e-3)
	c.E("E1", "e", "0", "a", "0", 2)
	c.I("I1", "a", "0", device.DC(1e-3))
	c.Mult("X1", "o", "a", "d", 1)
	c.Finalize()
	if len(c.Devices()) != 6 {
		t.Fatalf("device count = %d", len(c.Devices()))
	}
	x := make([]float64, c.Size())
	ev := c.NewEval()
	res := ev.EvalAt(x, device.FullDrive(), true)
	if res.G == nil {
		t.Fatal("missing Jacobian")
	}
}
