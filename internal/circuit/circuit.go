// Package circuit assembles device stamps into the MNA system
//
//	d/dt q(x) + f(x) + b(t) = 0
//
// where x stacks node voltages (ground excluded) followed by branch currents
// of voltage-defined elements. The package owns node naming, unknown-index
// assignment and residual/Jacobian evaluation; the analyses in
// internal/{transient,shooting,hb,core} consume the Eval interface.
package circuit

import (
	"fmt"
	"sort"

	"repro/internal/device"
	"repro/internal/la"
)

// Circuit is a flat netlist plus unknown-numbering state.
type Circuit struct {
	Title string

	nodeID   map[string]int // name → node number (0 = ground)
	nodeName []string       // node number → name
	devices  []device.Device
	branches int
	final    bool

	// Gmin is a small conductance from every node to ground added during
	// evaluation; it regularises floating nodes exactly like SPICE's GMIN.
	Gmin float64
}

// New returns an empty circuit. The ground node is pre-registered under the
// names "0" and "gnd".
func New(title string) *Circuit {
	c := &Circuit{
		Title:    title,
		nodeID:   map[string]int{"0": 0, "gnd": 0},
		nodeName: []string{"0"},
		Gmin:     1e-12,
	}
	return c
}

// Node interns a node name and returns its unknown index (-1 for ground).
func (c *Circuit) Node(name string) int {
	if c.final {
		panic("circuit: Node after Finalize")
	}
	id, ok := c.nodeID[name]
	if !ok {
		id = len(c.nodeName)
		c.nodeID[name] = id
		c.nodeName = append(c.nodeName, name)
	}
	return id - 1 // ground (#0) → -1
}

// NodeIndex returns the unknown index of an existing node name, or an error.
func (c *Circuit) NodeIndex(name string) (int, error) {
	id, ok := c.nodeID[name]
	if !ok {
		return 0, fmt.Errorf("circuit: unknown node %q", name)
	}
	return id - 1, nil
}

// NodeNames returns the non-ground node names ordered by unknown index.
func (c *Circuit) NodeNames() []string {
	out := append([]string(nil), c.nodeName[1:]...)
	return out
}

// Add registers a device instance.
func (c *Circuit) Add(d device.Device) {
	if c.final {
		panic("circuit: Add after Finalize")
	}
	c.devices = append(c.devices, d)
}

// Devices returns the registered devices (read-only use).
func (c *Circuit) Devices() []device.Device { return c.devices }

// Finalize assigns branch-current unknowns. It must be called once, after all
// devices are added and before evaluation.
func (c *Circuit) Finalize() {
	if c.final {
		return
	}
	nNodes := len(c.nodeName) - 1
	base := nNodes
	for _, d := range c.devices {
		if br, ok := d.(device.Brancher); ok {
			br.SetBranch(base)
			base += br.NumBranches()
		}
	}
	c.branches = base - nNodes
	c.final = true
}

// Size returns the total number of unknowns (node voltages + branch currents).
func (c *Circuit) Size() int {
	if !c.final {
		panic("circuit: Size before Finalize")
	}
	return len(c.nodeName) - 1 + c.branches
}

// NumNodes returns the number of node-voltage unknowns.
func (c *Circuit) NumNodes() int { return len(c.nodeName) - 1 }

// Eval holds reusable evaluation workspace for one circuit.
type Eval struct {
	ckt *Circuit
	st  device.Stamp
}

// NewEval allocates evaluation workspace.
func (c *Circuit) NewEval() *Eval {
	if !c.final {
		c.Finalize()
	}
	n := c.Size()
	e := &Eval{ckt: c}
	e.st = device.Stamp{
		Q: make([]float64, n),
		F: make([]float64, n),
		B: make([]float64, n),
		C: la.NewTriplet(n, n),
		G: la.NewTriplet(n, n),
	}
	return e
}

// Result is the outcome of one evaluation.
type Result struct {
	Q, F, B []float64 // views into the Eval workspace — copy before reuse
	C, G    *la.CSR   // nil unless Jacobian requested
}

// Residual returns r = F + B (the algebraic part; time-derivative handling is
// the analysis's job) into dst, allocating when dst is nil.
func (r *Result) Residual(dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(r.F))
	}
	for i := range r.F {
		dst[i] = r.F[i] + r.B[i]
	}
	return dst
}

// EvalAt stamps every device at iterate x under ctx. When jac is true the
// sparse Jacobians C = ∂q/∂x and G = ∂f/∂x are compressed and returned.
func (e *Eval) EvalAt(x []float64, ctx device.EvalCtx, jac bool) Result {
	return e.EvalAtInto(x, ctx, jac, nil, nil)
}

// EvalAtInto is EvalAt with caller-owned Jacobian storage: when jac is set,
// C and G are compressed into c and g (slices grown only when capacity is
// short) instead of freshly allocated matrices. The MPDE grid assembler
// keeps one (c, g) pair per grid point and re-stamps them every Newton
// iteration without allocating. nil c/g allocate as EvalAt does.
func (e *Eval) EvalAtInto(x []float64, ctx device.EvalCtx, jac bool, c, g *la.CSR) Result {
	n := e.ckt.Size()
	if len(x) != n {
		panic(fmt.Sprintf("circuit: iterate size %d, want %d", len(x), n))
	}
	st := &e.st
	la.Fill(st.Q, 0)
	la.Fill(st.F, 0)
	la.Fill(st.B, 0)
	st.C.Reset()
	st.G.Reset()
	st.X = x
	st.Jac = jac
	st.Ctx = ctx
	st.Gmin = e.ckt.Gmin

	for _, d := range e.ckt.devices {
		d.Stamp(st)
	}
	// GMIN to ground on every node unknown.
	if g := e.ckt.Gmin; g > 0 {
		for i := 0; i < e.ckt.NumNodes(); i++ {
			st.F[i] += g * x[i]
			if jac {
				st.G.Append(i, i, g)
			}
		}
	}
	res := Result{Q: st.Q, F: st.F, B: st.B}
	if jac {
		res.C = st.C.CompressInto(c)
		res.G = st.G.CompressInto(g)
	}
	return res
}

// TorusSources returns the independent sources whose waveforms are not
// torus-compatible (neither DC nor TorusWaveform); multi-time analyses call
// this to fail fast with a useful message.
func (c *Circuit) NonTorusSources() []string {
	var bad []string
	for _, d := range c.devices {
		src, ok := d.(device.Sourcer)
		if !ok {
			continue
		}
		w := src.Wave()
		if _, isTorus := w.(device.TorusWaveform); isTorus {
			continue
		}
		bad = append(bad, d.Name())
	}
	sort.Strings(bad)
	return bad
}

// --- convenience builders -------------------------------------------------

// R adds a resistor between named nodes.
func (c *Circuit) R(name, p, n string, ohms float64) *device.Resistor {
	d := &device.Resistor{Inst: name, P: c.Node(p), N: c.Node(n), R: ohms}
	c.Add(d)
	return d
}

// C adds a capacitor between named nodes.
func (c *Circuit) C(name, p, n string, farads float64) *device.Capacitor {
	d := &device.Capacitor{Inst: name, P: c.Node(p), N: c.Node(n), C: farads}
	c.Add(d)
	return d
}

// L adds an inductor between named nodes.
func (c *Circuit) L(name, p, n string, henries float64) *device.Inductor {
	d := &device.Inductor{Inst: name, P: c.Node(p), N: c.Node(n), L: henries}
	c.Add(d)
	return d
}

// V adds an independent voltage source.
func (c *Circuit) V(name, p, n string, w device.Waveform) *device.VSource {
	d := &device.VSource{Inst: name, P: c.Node(p), N: c.Node(n), W: w}
	c.Add(d)
	return d
}

// I adds an independent current source (current flows P→N through it).
func (c *Circuit) I(name, p, n string, w device.Waveform) *device.ISource {
	d := &device.ISource{Inst: name, P: c.Node(p), N: c.Node(n), W: w}
	c.Add(d)
	return d
}

// D adds a diode (anode p, cathode n) with the given saturation current.
func (c *Circuit) D(name, p, n string, is float64) *device.Diode {
	d := &device.Diode{Inst: name, P: c.Node(p), N: c.Node(n), Is: is}
	c.Add(d)
	return d
}

// M adds a level-1 MOSFET.
func (c *Circuit) M(name, d_, g, s string, m device.MOSFET) *device.MOSFET {
	m.Inst = name
	m.D, m.G, m.S = c.Node(d_), c.Node(g), c.Node(s)
	dev := &m
	c.Add(dev)
	return dev
}

// Gm adds a VCCS.
func (c *Circuit) Gm(name, p, n, cp, cn string, gm float64) *device.VCCS {
	d := &device.VCCS{Inst: name, P: c.Node(p), N: c.Node(n),
		CP: c.Node(cp), CN: c.Node(cn), Gm: gm}
	c.Add(d)
	return d
}

// E adds a VCVS.
func (c *Circuit) E(name, p, n, cp, cn string, mu float64) *device.VCVS {
	d := &device.VCVS{Inst: name, P: c.Node(p), N: c.Node(n),
		CP: c.Node(cp), CN: c.Node(cn), Mu: mu}
	c.Add(d)
	return d
}

// Mult adds an ideal multiplier element injecting Gm·v(a)·v(b) into node n.
func (c *Circuit) Mult(name, n, a, b string, gm float64) *device.Multiplier {
	d := &device.Multiplier{Inst: name, N: c.Node(n), A: c.Node(a), B_: c.Node(b), Gm: gm}
	c.Add(d)
	return d
}
