package transient

import (
	"context"
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/device"
)

// rcCircuit returns V(5V step via DC) → R → out → C → gnd.
func rcCircuit(r, c float64) *circuit.Circuit {
	ckt := circuit.New("rc")
	ckt.V("V1", "in", "0", device.DC(5))
	ckt.R("R1", "in", "out", r)
	ckt.C("C1", "out", "0", c)
	return ckt
}

func TestDCResistiveDivider(t *testing.T) {
	ckt := circuit.New("div")
	ckt.V("V1", "in", "0", device.DC(9))
	ckt.R("R1", "in", "mid", 2000)
	ckt.R("R2", "mid", "0", 1000)
	x, st, err := DC(context.Background(), ckt, DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatal("DC not converged")
	}
	mid, _ := ckt.NodeIndex("mid")
	if math.Abs(x[mid]-3) > 1e-6 {
		t.Fatalf("v(mid) = %v, want 3", x[mid])
	}
}

func TestDCDiodeForwardDrop(t *testing.T) {
	// 5V → 1k → diode to ground: v ≈ 0.57–0.75 V, i = (5−v)/1k.
	ckt := circuit.New("dio")
	ckt.V("V1", "in", "0", device.DC(5))
	ckt.R("R1", "in", "a", 1000)
	ckt.D("D1", "a", "0", 1e-14)
	x, _, err := DC(context.Background(), ckt, DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := ckt.NodeIndex("a")
	if x[a] < 0.5 || x[a] > 0.8 {
		t.Fatalf("diode drop = %v, out of range", x[a])
	}
	// KCL: i through R equals diode current.
	d := &device.Diode{Is: 1e-14}
	id, _ := d.Current(x[a])
	ir := (5 - x[a]) / 1000
	if math.Abs(id-ir)/ir > 1e-6 {
		t.Fatalf("branch currents disagree: %v vs %v", id, ir)
	}
}

func TestDCMOSFETCommonSource(t *testing.T) {
	// VDD 3V, RD 10k from vdd to drain, NMOS gate at 1.0V, source grounded.
	// Id = KP/2·(0.5)² = 25µA·... with KP=2e-4: Id = 2e-4/2·0.25 = 25 µA →
	// Vd = 3 − 0.25 = 2.75 (sat since vds > vov).
	ckt := circuit.New("cs")
	ckt.V("VDD", "vdd", "0", device.DC(3))
	ckt.V("VG", "g", "0", device.DC(1))
	ckt.R("RD", "vdd", "d", 10000)
	ckt.M("M1", "d", "g", "0", device.MOSFET{Vt0: 0.5, KP: 2e-4})
	x, _, err := DC(context.Background(), ckt, DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d, _ := ckt.NodeIndex("d")
	if math.Abs(x[d]-2.75) > 1e-3 {
		t.Fatalf("v(drain) = %v, want 2.75", x[d])
	}
}

func TestTransientRCCharging(t *testing.T) {
	// v(t) = 5(1 − e^{−t/RC}) from v(0)=0. Start from an explicit zero IC.
	r, c := 1000.0, 1e-6 // τ = 1 ms
	ckt := rcCircuit(r, c)
	ckt.Finalize()
	x0 := make([]float64, ckt.Size())
	in, _ := ckt.NodeIndex("in")
	x0[in] = 5 // source node pinned; out starts at 0
	res, err := Run(context.Background(), ckt, Options{
		Method: TRAP, TStop: 5e-3, Step: 1e-5, X0: x0,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := ckt.NodeIndex("out")
	tau := r * c
	for k, tt := range res.T {
		want := 5 * (1 - math.Exp(-tt/tau))
		if math.Abs(res.X[k][out]-want) > 0.02*5 {
			t.Fatalf("t=%g: v=%v want %v", tt, res.X[k][out], want)
		}
	}
	// End value close to 5.
	final := res.X[len(res.X)-1][out]
	if math.Abs(final-5*(1-math.Exp(-5))) > 0.05 {
		t.Fatalf("final = %v", final)
	}
}

func TestTransientMethodsAgree(t *testing.T) {
	ckt0 := rcCircuit(1000, 1e-6)
	ckt0.Finalize()
	x0 := make([]float64, ckt0.Size())
	in, _ := ckt0.NodeIndex("in")
	x0[in] = 5
	run := func(m Method) float64 {
		ckt := rcCircuit(1000, 1e-6)
		ckt.Finalize()
		res, err := Run(context.Background(), ckt, Options{Method: m, TStop: 2e-3, Step: 2e-6, FixedStep: true, X0: x0})
		if err != nil {
			t.Fatal(err)
		}
		out, _ := ckt.NodeIndex("out")
		return res.X[len(res.X)-1][out]
	}
	vbe, vtr, vg2 := run(BE), run(TRAP), run(GEAR2)
	want := 5 * (1 - math.Exp(-2.0))
	for name, v := range map[string]float64{"BE": vbe, "TRAP": vtr, "GEAR2": vg2} {
		if math.Abs(v-want) > 0.03 {
			t.Fatalf("%s final = %v, want %v", name, v, want)
		}
	}
	// Second-order methods should beat BE on a smooth problem.
	if math.Abs(vtr-want) > math.Abs(vbe-want)+1e-9 {
		t.Fatalf("TRAP (%v) not better than BE (%v)", vtr, vbe)
	}
}

func TestTransientSineSteadyStateAmplitude(t *testing.T) {
	// RC low-pass driven at f = 1/(2πRC): gain must be 1/√2.
	r, c := 1000.0, 1e-6
	fc := 1 / (2 * math.Pi * r * c)
	ckt := circuit.New("lp")
	ckt.V("V1", "in", "0", device.Sine{Amp: 1, F1: fc, K1: 1})
	ckt.R("R1", "in", "out", r)
	ckt.C("C1", "out", "0", c)
	res, err := Run(context.Background(), ckt, Options{Method: TRAP, TStop: 20 / fc, Step: 1 / fc / 200, FixedStep: true})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := ckt.NodeIndex("out")
	// Measure peak over the last 2 cycles.
	peak := 0.0
	for k, tt := range res.T {
		if tt > 18/fc {
			if v := math.Abs(res.X[k][out]); v > peak {
				peak = v
			}
		}
	}
	if math.Abs(peak-1/math.Sqrt2) > 0.02 {
		t.Fatalf("corner-frequency gain = %v, want %v", peak, 1/math.Sqrt2)
	}
}

func TestTransientInductorLR(t *testing.T) {
	// 1V step into L-R: i(t) = (1 − e^{−tR/L})/R.
	ckt := circuit.New("lr")
	ckt.V("V1", "in", "0", device.DC(1))
	ind := ckt.L("L1", "in", "mid", 1e-3)
	ckt.R("R1", "mid", "0", 10)
	ckt.Finalize()
	x0 := make([]float64, ckt.Size())
	in, _ := ckt.NodeIndex("in")
	x0[in] = 1
	res, err := Run(context.Background(), ckt, Options{Method: TRAP, TStop: 5e-4, Step: 1e-6, FixedStep: true, X0: x0})
	if err != nil {
		t.Fatal(err)
	}
	iL := res.X[len(res.X)-1][ind.Branch()]
	tau := 1e-3 / 10
	want := (1 - math.Exp(-5e-4/tau)) / 10
	if math.Abs(iL-want) > 2e-3*math.Abs(want)+1e-6 {
		t.Fatalf("i(L) = %v, want %v", iL, want)
	}
}

func TestTransientHalfWaveRectifier(t *testing.T) {
	// Sine → diode → RC load: output stays near peak minus a drop and never
	// goes significantly negative.
	ckt := circuit.New("rect")
	f := 1e3
	ckt.V("V1", "in", "0", device.Sine{Amp: 5, F1: f, K1: 1})
	ckt.D("D1", "in", "out", 1e-14)
	ckt.R("RL", "out", "0", 10e3)
	ckt.C("CL", "out", "0", 1e-6)
	res, err := Run(context.Background(), ckt, Options{Method: GEAR2, TStop: 10e-3, Step: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := ckt.NodeIndex("out")
	minV, maxV := math.Inf(1), math.Inf(-1)
	for k, tt := range res.T {
		if tt < 2e-3 { // skip initial charge-up
			continue
		}
		v := res.X[k][out]
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	if maxV < 3.8 || maxV > 5 {
		t.Fatalf("rectified peak = %v", maxV)
	}
	if minV < 2.5 {
		t.Fatalf("ripple too deep: min %v", minV)
	}
}

func TestResultAtInterpolation(t *testing.T) {
	r := &Result{T: []float64{0, 1, 2}, X: [][]float64{{0}, {10}, {20}}}
	if v := r.At(0.5, nil)[0]; v != 5 {
		t.Fatalf("At(0.5) = %v", v)
	}
	if v := r.At(-1, nil)[0]; v != 0 {
		t.Fatalf("At(-1) = %v", v)
	}
	if v := r.At(3, nil)[0]; v != 20 {
		t.Fatalf("At(3) = %v", v)
	}
	if p := r.Probe(0); len(p) != 3 || p[2] != 20 {
		t.Fatalf("Probe = %v", p)
	}
}

func TestRunRejectsEmptyInterval(t *testing.T) {
	ckt := rcCircuit(1, 1)
	if _, err := Run(context.Background(), ckt, Options{TStop: 0}); err == nil {
		t.Fatal("expected error for empty interval")
	}
}

func TestAdaptiveStepTakesFewerPointsOnSmoothTail(t *testing.T) {
	ckt := rcCircuit(1000, 1e-6)
	ckt.Finalize()
	x0 := make([]float64, ckt.Size())
	in, _ := ckt.NodeIndex("in")
	x0[in] = 5
	adaptive, err := Run(context.Background(), ckt, Options{Method: GEAR2, TStop: 10e-3, Step: 1e-6, X0: x0, LTETol: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	ckt2 := rcCircuit(1000, 1e-6)
	ckt2.Finalize()
	fixed, err := Run(context.Background(), ckt2, Options{Method: GEAR2, TStop: 10e-3, Step: 1e-6, FixedStep: true, X0: x0})
	if err != nil {
		t.Fatal(err)
	}
	if len(adaptive.T) >= len(fixed.T) {
		t.Fatalf("adaptive (%d points) should beat fixed (%d points)", len(adaptive.T), len(fixed.T))
	}
}
