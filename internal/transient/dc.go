// Package transient implements DC operating-point analysis and adaptive
// time-stepping integration (backward Euler, trapezoidal, BDF2/Gear-2) of the
// MNA equations. It is both the workhorse inside shooting and the
// "traditional time-stepping simulation" baseline that the paper's MPDE
// method is measured against.
package transient

import (
	"context"
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/la"
	"repro/internal/solver"
)

// DCOptions configures operating-point analysis.
type DCOptions struct {
	Newton solver.Options
	// Time at which source waveforms are evaluated (default 0).
	Time float64
	// GminSteps > 0 enables gmin stepping as a second fallback after
	// source stepping (default 10 when fallbacks trigger).
	GminSteps int
	// SignalsOff computes the true bias point: time-varying sources are
	// zeroed and only DC sources drive the circuit. Without it the sources
	// are evaluated at Time, which is the SPICE transient-initial-condition
	// convention.
	SignalsOff bool
}

// DC computes the operating point: f(x) + b(t) = 0 with dq/dt = 0.
// It tries plain Newton, then source-stepping continuation, then gmin
// stepping. The returned vector has circuit.Size() entries. Cancelling ctx
// aborts the Newton iterations cooperatively; an already-canceled context
// returns ctx.Err() before any assembly work.
func DC(ctx context.Context, ckt *circuit.Circuit, opt DCOptions) ([]float64, solver.Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, solver.Stats{}, err
	}
	ckt.Finalize()
	ev := ckt.NewEval()
	n := ckt.Size()
	// Merge Newton defaults non-destructively so set fields (Linear,
	// PivotTol, …) survive a zero MaxIter.
	if opt.Newton.MaxIter == 0 {
		opt.Newton.Damping = true
		// DC benefits from a modest voltage clamp per iteration; a
		// caller-set clamp survives.
		if opt.Newton.MaxStep == 0 {
			opt.Newton.MaxStep = 10
		}
	}
	opt.Newton.Fill()

	evalAt := func(lambda float64, x []float64, jac bool) ([]float64, *la.CSR, error) {
		if opt.SignalsOff {
			// Lambda=0 with SignalOnlyLambda leaves DC sources at full
			// strength and zeros the AC drive; the continuation parameter
			// then ramps the DC-only source vector.
			ctx := device.EvalCtx{T: opt.Time, Lambda: 0, SignalOnlyLambda: true}
			res := ev.EvalAt(x, ctx, jac)
			r := make([]float64, n)
			for i := range r {
				r[i] = res.F[i] + lambda*res.B[i]
			}
			return r, res.G, nil
		}
		ctx := device.EvalCtx{T: opt.Time, Lambda: lambda}
		res := ev.EvalAt(x, ctx, jac)
		r := res.Residual(nil)
		return r, res.G, nil
	}

	x := make([]float64, n)
	ps := solver.FuncParamSystem{N: n, F: evalAt}
	st, _, err := solver.SolveWithFallback(ctx, ps, x, opt.Newton)
	if err == nil {
		return x, st, nil
	}

	// Gmin stepping: solve with a large artificial conductance to ground,
	// then relax it geometrically down to the circuit's own Gmin.
	steps := opt.GminSteps
	if steps <= 0 {
		steps = 12
	}
	la.Fill(x, 0)
	gmin0 := 1e-2
	target := ckt.Gmin
	if target <= 0 {
		target = 1e-12
	}
	ratio := math.Pow(target/gmin0, 1/float64(steps))
	g := gmin0
	for k := 0; k <= steps; k++ {
		sys := solver.FuncSystem{N: n, F: func(xx []float64, jac bool) ([]float64, *la.CSR, error) {
			ctx := device.EvalCtx{T: opt.Time, Lambda: 1}
			if opt.SignalsOff {
				ctx = device.EvalCtx{T: opt.Time, Lambda: 0, SignalOnlyLambda: true}
			}
			res := ev.EvalAt(xx, ctx, jac)
			r := res.Residual(nil)
			for i := 0; i < ckt.NumNodes(); i++ {
				r[i] += g * xx[i]
			}
			var jm *la.CSR
			if jac {
				// Re-stamp the extra gmin onto a copy of G's diagonal.
				jm = res.G.Clone()
				di := jm.DiagIndex()
				for i := 0; i < ckt.NumNodes(); i++ {
					if di[i] >= 0 {
						jm.Val[di[i]] += g
					}
				}
			}
			return r, jm, nil
		}}
		st2, err2 := solver.Solve(ctx, sys, x, opt.Newton)
		if err2 != nil {
			return nil, st2, fmt.Errorf("transient: DC gmin stepping failed at gmin=%.3e: %w", g, err2)
		}
		st = st2
		g *= ratio
	}
	return x, st, nil
}
