package transient

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/la"
	"repro/internal/solver"
)

// Method selects the integration formula.
type Method int

const (
	// BE is backward Euler (L-stable, first order).
	BE Method = iota
	// TRAP is the trapezoidal rule (A-stable, second order).
	TRAP
	// GEAR2 is the two-step BDF (L-stable, second order, variable step).
	GEAR2
)

// String names the method.
func (m Method) String() string {
	switch m {
	case BE:
		return "BE"
	case TRAP:
		return "TRAP"
	case GEAR2:
		return "GEAR2"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Options configures a transient run.
type Options struct {
	Method  Method
	TStart  float64
	TStop   float64
	Step    float64 // initial (and, for FixedStep, the only) step size
	MaxStep float64 // 0 → (TStop−TStart)/50
	MinStep float64 // 0 → Step·1e-9
	// FixedStep disables local-truncation-error control (used by shooting,
	// which needs a deterministic grid).
	FixedStep bool
	// LTETol is the relative local-truncation-error target (default 1e-3).
	LTETol float64
	// X0 is the initial condition; nil → compute a DC operating point.
	X0     []float64
	Newton solver.Options
	// MaxPoints caps stored time points (default 4e6 guard).
	MaxPoints int
}

// Result is a stored trajectory.
type Result struct {
	T []float64
	X [][]float64 // X[k] is the state at T[k]
	// Steps counts accepted steps; Rejected counts LTE rejections;
	// NewtonIters totals nonlinear iterations.
	Steps, Rejected, NewtonIters int
}

// At linearly interpolates the state at time t into dst.
func (r *Result) At(t float64, dst []float64) []float64 {
	n := len(r.T)
	if dst == nil {
		dst = make([]float64, len(r.X[0]))
	}
	if n == 0 {
		return dst
	}
	if t <= r.T[0] {
		copy(dst, r.X[0])
		return dst
	}
	if t >= r.T[n-1] {
		copy(dst, r.X[n-1])
		return dst
	}
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if r.T[mid] <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	w := (t - r.T[lo]) / (r.T[hi] - r.T[lo])
	for i := range dst {
		dst[i] = r.X[lo][i] + w*(r.X[hi][i]-r.X[lo][i])
	}
	return dst
}

// Probe extracts the waveform of one unknown index.
func (r *Result) Probe(idx int) []float64 {
	out := make([]float64, len(r.T))
	for k, x := range r.X {
		out[k] = x[idx]
	}
	return out
}

// ErrStepUnderflow is returned when LTE control cannot find a workable step.
var ErrStepUnderflow = errors.New("transient: time step underflow")

// Run integrates the circuit over [TStart, TStop]. Cancelling ctx aborts
// the march cooperatively between Newton iterations; an already-canceled
// context returns ctx.Err() before any assembly work.
func Run(ctx context.Context, ckt *circuit.Circuit, opt Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ckt.Finalize()
	ev := ckt.NewEval()
	n := ckt.Size()
	if opt.TStop <= opt.TStart {
		return nil, fmt.Errorf("transient: empty interval [%g, %g]", opt.TStart, opt.TStop)
	}
	if opt.Step <= 0 {
		opt.Step = (opt.TStop - opt.TStart) / 1000
	}
	if opt.MaxStep <= 0 {
		opt.MaxStep = (opt.TStop - opt.TStart) / 50
	}
	if opt.MinStep <= 0 {
		opt.MinStep = opt.Step * 1e-9
	}
	if opt.LTETol <= 0 {
		opt.LTETol = 1e-3
	}
	// Non-destructive Newton defaults (set fields survive a zero MaxIter).
	if opt.Newton.MaxIter == 0 {
		opt.Newton.Damping = true
	}
	opt.Newton.Fill()
	if opt.MaxPoints <= 0 {
		opt.MaxPoints = 4_000_000
	}

	x := make([]float64, n)
	if opt.X0 != nil {
		if len(opt.X0) != n {
			return nil, fmt.Errorf("transient: X0 size %d, want %d", len(opt.X0), n)
		}
		copy(x, opt.X0)
	} else {
		x0, _, err := DC(ctx, ckt, DCOptions{Time: opt.TStart})
		if err != nil {
			return nil, fmt.Errorf("transient: initial DC failed: %w", err)
		}
		copy(x, x0)
	}

	res := &Result{}
	record := func(t float64, xx []float64) {
		res.T = append(res.T, t)
		res.X = append(res.X, append([]float64(nil), xx...))
	}
	record(opt.TStart, x)

	// History for multi-step formulas: charge vectors and derivative.
	qOf := func(xx []float64, t float64) ([]float64, []float64, []float64) {
		r := ev.EvalAt(xx, device.EvalCtx{T: t, Lambda: 1}, false)
		q := append([]float64(nil), r.Q...)
		f := append([]float64(nil), r.F...)
		b := append([]float64(nil), r.B...)
		return q, f, b
	}
	qPrev, fPrev, bPrev := qOf(x, opt.TStart)
	qdotPrev := make([]float64, n) // dq/dt at previous point ≈ −(f+b)
	for i := range qdotPrev {
		qdotPrev[i] = -(fPrev[i] + bPrev[i])
	}
	var qPrev2 []float64
	hPrev := 0.0

	t := opt.TStart
	h := opt.Step
	xPrev := append([]float64(nil), x...)
	var xPrev2 []float64

	for t < opt.TStop-1e-15*(opt.TStop-opt.TStart) {
		if len(res.T) > opt.MaxPoints {
			return res, fmt.Errorf("transient: exceeded MaxPoints=%d", opt.MaxPoints)
		}
		if t+h > opt.TStop {
			h = opt.TStop - t
		}
		hTaken := h
		tNew := t + hTaken

		method := opt.Method
		if method == GEAR2 && qPrev2 == nil {
			method = BE // bootstrap the two-step formula
		}
		if method == TRAP && res.Steps == 0 {
			method = BE // damp the initial-derivative transient
		}

		// Residual closure for this step.
		hh := h
		sys := solver.FuncSystem{N: n, F: func(xx []float64, jac bool) ([]float64, *la.CSR, error) {
			r := ev.EvalAt(xx, device.EvalCtx{T: tNew, Lambda: 1}, jac)
			out := make([]float64, n)
			var cScale float64
			switch method {
			case TRAP:
				cScale = 2 / hh
				for i := range out {
					out[i] = 2*(r.Q[i]-qPrev[i])/hh - qdotPrev[i] + r.F[i] + r.B[i]
				}
			case GEAR2:
				hn, hm := hh, hPrev
				a0 := (2*hn + hm) / (hn * (hn + hm))
				a1 := -(hn + hm) / (hn * hm)
				a2 := hn / (hm * (hn + hm))
				cScale = a0
				for i := range out {
					out[i] = a0*r.Q[i] + a1*qPrev[i] + a2*qPrev2[i] + r.F[i] + r.B[i]
				}
			default: // BE
				cScale = 1 / hh
				for i := range out {
					out[i] = (r.Q[i]-qPrev[i])/hh + r.F[i] + r.B[i]
				}
			}
			var j *la.CSR
			if jac {
				j = combineJac(r.C, r.G, cScale)
			}
			return out, j, nil
		}}

		xNew := append([]float64(nil), x...)
		st, err := solver.Solve(ctx, sys, xNew, opt.Newton)
		res.NewtonIters += st.Iterations
		if err != nil {
			if solver.Interrupted(err) {
				return res, fmt.Errorf("transient: interrupted at t=%.6e: %w", t, err)
			}
			h /= 4
			res.Rejected++
			if h < opt.MinStep {
				return res, fmt.Errorf("%w at t=%.6e (Newton: %v)", ErrStepUnderflow, t, err)
			}
			continue
		}

		if !opt.FixedStep && xPrev2 != nil {
			// LTE estimate: compare the corrector against a linear
			// extrapolation through the last two accepted points; the ratio
			// is normalised so lte ≈ 1 means "error at the LTE target".
			pred := make([]float64, n)
			extrapolate(pred, xPrev2, xPrev, x, hPrev, hTaken)
			lte := 0.0
			for i := range pred {
				e := math.Abs(xNew[i] - pred[i])
				den := opt.Newton.AbsTol + math.Abs(xNew[i])*opt.LTETol
				if r := e / den; r > lte {
					lte = r
				}
			}
			if lte > 20 { // reject: predictor badly wrong
				h = hTaken / 2
				res.Rejected++
				if h < opt.MinStep {
					return res, fmt.Errorf("%w at t=%.6e (LTE)", ErrStepUnderflow, t)
				}
				continue
			}
			// Gentle step adaptation for the NEXT step.
			if lte < 0.5 {
				h = math.Min(hTaken*1.5, opt.MaxStep)
			} else if lte > 2 {
				h = math.Max(hTaken/1.5, opt.MinStep)
			}
		}

		// Accept.
		qNew, fNew, bNew := qOf(xNew, tNew)
		switch method {
		case TRAP:
			for i := range qdotPrev {
				qdotPrev[i] = 2*(qNew[i]-qPrev[i])/hTaken - qdotPrev[i]
			}
		default:
			for i := range qdotPrev {
				qdotPrev[i] = -(fNew[i] + bNew[i])
			}
		}
		qPrev2 = qPrev
		qPrev = qNew
		xPrev2 = xPrev
		xPrev = append([]float64(nil), x...)
		copy(x, xNew)
		hPrev = hTaken
		t = tNew
		res.Steps++
		record(t, x)
	}
	return res, nil
}

// combineJac forms J = cScale·C + G as a fresh CSR.
func combineJac(c, g *la.CSR, cScale float64) *la.CSR {
	tr := la.NewTriplet(g.Rows, g.Cols)
	for i := 0; i < g.Rows; i++ {
		for k := g.RowPtr[i]; k < g.RowPtr[i+1]; k++ {
			tr.Append(i, g.ColIdx[k], g.Val[k])
		}
	}
	for i := 0; i < c.Rows; i++ {
		for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
			tr.Append(i, c.ColIdx[k], cScale*c.Val[k])
		}
	}
	return tr.Compress()
}

// extrapolate writes the quadratic extrapolation through (t−hp−h, x2),
// (t−h, x1), (t, x0) evaluated one step h ahead... in practice a linear
// extrapolation through the last two points is robust and that is what we
// use; the third point damps noise via averaging of slopes.
func extrapolate(dst, x2, x1, x0 []float64, hp, h float64) {
	if hp <= 0 {
		for i := range dst {
			dst[i] = x0[i]
		}
		return
	}
	for i := range dst {
		slope := (x0[i] - x1[i]) / hp
		dst[i] = x0[i] + slope*h
	}
	_ = x2
}
