package transient

import (
	"context"
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/device"
)

// bjtAmp builds a common-emitter amplifier with emitter degeneration.
func bjtAmp(sig device.Waveform) *circuit.Circuit {
	ckt := circuit.New("ce-amp")
	ckt.V("VCC", "vcc", "0", device.DC(12))
	ckt.V("VB", "bsrc", "0", sig)
	ckt.R("RB", "bsrc", "b", 100)
	ckt.R("RC", "vcc", "c", 4700)
	ckt.R("RE", "e", "0", 1000)
	q := &device.BJT{Inst: "Q1", C: ckt.Node("c"), B: ckt.Node("b"), E: ckt.Node("e"),
		Is: 1e-15, BetaF: 200}
	ckt.Add(q)
	return ckt
}

func TestBJTCommonEmitterBias(t *testing.T) {
	// VB = 2.7 V, VE ≈ 2.0 V → IE ≈ 2 mA → VC ≈ 12 − 9.4 ≈ 2.6 V.
	ckt := bjtAmp(device.DC(2.7))
	x, _, err := DC(context.Background(), ckt, DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e, _ := ckt.NodeIndex("e")
	c, _ := ckt.NodeIndex("c")
	if x[e] < 1.8 || x[e] > 2.2 {
		t.Fatalf("emitter bias %v, want ≈2.0", x[e])
	}
	ie := x[e] / 1000
	wantVc := 12 - 4700*ie*(200.0/201)
	if math.Abs(x[c]-wantVc) > 0.2 {
		t.Fatalf("collector bias %v, want ≈%v", x[c], wantVc)
	}
}

func TestBJTCommonEmitterGainTransient(t *testing.T) {
	// Small-signal gain ≈ −RC/(RE + re): re = VT/IE ≈ 13 Ω → gain ≈ −4.6.
	f := 1e4
	ckt := bjtAmp(device.Sum{
		device.DC(2.7),
		device.Sine{Amp: 0.05, F1: f, K1: 1},
	})
	res, err := Run(context.Background(), ckt, Options{Method: TRAP, TStop: 3 / f, Step: 1 / f / 200, FixedStep: true})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := ckt.NodeIndex("c")
	// Peak-to-peak of the last period.
	lo, hi := math.Inf(1), math.Inf(-1)
	for k, tt := range res.T {
		if tt < 2/f {
			continue
		}
		v := res.X[k][c]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	gain := (hi - lo) / (2 * 0.05)
	if gain < 3.5 || gain > 5.5 {
		t.Fatalf("CE gain %v, want ≈4.6", gain)
	}
}

func TestBJTClippingAtOverdrive(t *testing.T) {
	// A 2 V drive slams the stage rail to rail: the collector must clip
	// near saturation (low side) and near cutoff (VC→VCC·RE-divider) —
	// i.e. strongly nonlinear behaviour, no numerical blow-ups.
	f := 1e4
	ckt := bjtAmp(device.Sum{
		device.DC(2.7),
		device.Sine{Amp: 2, F1: f, K1: 1},
	})
	res, err := Run(context.Background(), ckt, Options{Method: GEAR2, TStop: 2 / f, Step: 1 / f / 400, FixedStep: true})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := ckt.NodeIndex("c")
	lo, hi := math.Inf(1), math.Inf(-1)
	for k := range res.T {
		v := res.X[k][c]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo < -0.5 || hi > 12.5 {
		t.Fatalf("collector left the rails: [%v, %v]", lo, hi)
	}
	if hi-lo < 6 {
		t.Fatalf("overdriven stage should swing hard: [%v, %v]", lo, hi)
	}
}
