package la

import "math"

// Vector helpers shared across the solvers. All operate on raw []float64 to
// keep the Newton and Krylov loops allocation-free.

// Dot returns ⟨x, y⟩.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(ErrShape)
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm with overflow-safe scaling.
func Norm2(x []float64) float64 {
	scale, ssq := 0.0, 1.0
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns max |x_i|.
func NormInf(x []float64) float64 {
	mx := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Axpy computes y += a·x.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(ErrShape)
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// Scal multiplies x by a in place.
func Scal(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// CopyVec copies src into dst (lengths must match).
func CopyVec(dst, src []float64) {
	if len(dst) != len(src) {
		panic(ErrShape)
	}
	copy(dst, src)
}

// Sub computes z = x − y.
func Sub(x, y, z []float64) {
	if len(x) != len(y) || len(x) != len(z) {
		panic(ErrShape)
	}
	for i := range x {
		z[i] = x[i] - y[i]
	}
}

// Fill sets every entry of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// WeightedMaxNorm returns max_i |x_i| / (abstol + reltol·|ref_i|), the SPICE
// style convergence norm: a value ≤ 1 means every component meets tolerance.
func WeightedMaxNorm(x, ref []float64, abstol, reltol float64) float64 {
	mx := 0.0
	for i, v := range x {
		den := abstol
		if ref != nil {
			den += reltol * math.Abs(ref[i])
		}
		if r := math.Abs(v) / den; r > mx {
			mx = r
		}
	}
	return mx
}
