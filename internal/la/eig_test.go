package la

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"
)

func sortedAbs(eig []complex128) []float64 {
	out := make([]float64, len(eig))
	for i, l := range eig {
		out[i] = cmplx.Abs(l)
	}
	sort.Float64s(out)
	return out
}

func TestEigenvaluesDiagonal(t *testing.T) {
	a := DenseFromRows([][]float64{{3, 0, 0}, {0, -1, 0}, {0, 0, 0.5}})
	eig, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	got := sortedAbs(eig)
	want := []float64{0.5, 1, 3}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-10 {
			t.Fatalf("eig %v, want magnitudes %v", eig, want)
		}
	}
}

func TestEigenvaluesUpperTriangular(t *testing.T) {
	a := DenseFromRows([][]float64{{2, 5, 1}, {0, -3, 2}, {0, 0, 7}})
	eig, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	got := sortedAbs(eig)
	want := []float64{2, 3, 7}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("eig %v", eig)
		}
	}
}

func TestEigenvaluesComplexPair(t *testing.T) {
	// Rotation-scale matrix: eigenvalues r·e^{±iθ} with r=2, θ=π/3.
	r, th := 2.0, math.Pi/3
	a := DenseFromRows([][]float64{
		{r * math.Cos(th), -r * math.Sin(th)},
		{r * math.Sin(th), r * math.Cos(th)},
	})
	eig, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(eig) != 2 {
		t.Fatalf("want 2 eigenvalues, got %v", eig)
	}
	for _, l := range eig {
		if math.Abs(cmplx.Abs(l)-2) > 1e-9 {
			t.Fatalf("|λ| = %v, want 2", cmplx.Abs(l))
		}
		if math.Abs(math.Abs(cmplx.Phase(l))-th) > 1e-9 {
			t.Fatalf("arg λ = %v, want ±%v", cmplx.Phase(l), th)
		}
	}
}

func TestEigenvaluesTraceDetInvariants(t *testing.T) {
	// For random matrices: Σλ = trace, Πλ = det.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(8)
		a := NewDense(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		eig, err := Eigenvalues(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(eig) != n {
			t.Fatalf("trial %d: %d eigenvalues for n=%d", trial, len(eig), n)
		}
		tr := complex(0, 0)
		pr := complex(1, 0)
		for _, l := range eig {
			tr += l
			pr *= l
		}
		wantTr := 0.0
		for i := 0; i < n; i++ {
			wantTr += a.At(i, i)
		}
		f, err := DenseLU(a)
		var wantDet float64
		if err == nil {
			wantDet = f.Det()
		}
		if math.Abs(real(tr)-wantTr) > 1e-8*(1+math.Abs(wantTr)) || math.Abs(imag(tr)) > 1e-8 {
			t.Fatalf("trial %d: trace %v vs %v", trial, tr, wantTr)
		}
		if err == nil && math.Abs(real(pr)-wantDet) > 1e-6*(1+math.Abs(wantDet)) {
			t.Fatalf("trial %d: det %v vs %v", trial, pr, wantDet)
		}
	}
}

func TestEigenvaluesSymmetricKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := DenseFromRows([][]float64{{2, 1}, {1, 2}})
	eig, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	got := sortedAbs(eig)
	if math.Abs(got[0]-1) > 1e-10 || math.Abs(got[1]-3) > 1e-10 {
		t.Fatalf("eig %v, want {1,3}", eig)
	}
}

func TestSpectralRadius(t *testing.T) {
	a := DenseFromRows([][]float64{{0, 1}, {-0.25, 0}}) // λ = ±0.5i
	r, err := SpectralRadius(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-0.5) > 1e-10 {
		t.Fatalf("spectral radius %v, want 0.5", r)
	}
}

func TestEigenvaluesEdgeCases(t *testing.T) {
	if _, err := Eigenvalues(NewDense(2, 3)); err == nil {
		t.Fatal("non-square should error")
	}
	eig, err := Eigenvalues(NewDense(0, 0))
	if err != nil || len(eig) != 0 {
		t.Fatalf("empty matrix: %v %v", eig, err)
	}
	one := DenseFromRows([][]float64{{4}})
	eig, err = Eigenvalues(one)
	if err != nil || len(eig) != 1 || eig[0] != 4 {
		t.Fatalf("1x1: %v %v", eig, err)
	}
}

func TestEigenvaluesSimilarityInvariantProperty(t *testing.T) {
	// Eigenvalues are invariant under similarity transforms P·A·P⁻¹.
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(5)
		a := NewDense(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		p := randomDense(rng, n) // diagonally boosted → invertible
		pf, err := DenseLU(p)
		if err != nil {
			t.Fatal(err)
		}
		pinv := pf.SolveMatrix(Eye(n))
		b := p.Mul(a).Mul(pinv)
		ea, err1 := Eigenvalues(a)
		eb, err2 := Eigenvalues(b)
		if err1 != nil || err2 != nil {
			t.Fatalf("eig failed: %v %v", err1, err2)
		}
		sa, sb := sortedAbs(ea), sortedAbs(eb)
		for i := range sa {
			if math.Abs(sa[i]-sb[i]) > 1e-6*(1+sa[i]) {
				t.Fatalf("trial %d: |λ| %v vs %v", trial, sa, sb)
			}
		}
	}
}

func TestGMRESWithExactLUPreconditionerOneIteration(t *testing.T) {
	// With an exact-factorisation preconditioner GMRES must converge in a
	// single iteration.
	rng := rand.New(rand.NewSource(31))
	m := randomSparse(rng, 40, 0.2)
	f, err := SparseLUFactor(m, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 40)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, 40)
	res, err := GMRES(AsOperator(m), b, x, GMRESOptions{
		Tol: 1e-12, M: SparseLUPreconditioner{F: f}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 2 {
		t.Fatalf("exact preconditioner took %d iterations", res.Iterations)
	}
}
