package la

import (
	"math/rand"
	"testing"
)

// benchMatrix builds a banded-plus-random sparse system resembling the MPDE
// grid Jacobian's profile.
func benchMatrix(n int) *CSR {
	rng := rand.New(rand.NewSource(42))
	tr := NewTriplet(n, n)
	for i := 0; i < n; i++ {
		tr.Append(i, i, 6+rng.Float64())
		for _, off := range []int{-2, -1, 1, 2} {
			j := i + off
			if j >= 0 && j < n {
				tr.Append(i, j, rng.NormFloat64())
			}
		}
		tr.Append(i, rng.Intn(n), 0.3*rng.NormFloat64())
	}
	return tr.Compress()
}

// BenchmarkSparseLUFactor is the full symbolic+numeric factorisation.
func BenchmarkSparseLUFactor(b *testing.B) {
	a := benchMatrix(2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SparseLUFactor(a, 0.001); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSparseLURefactor reuses the symbolic analysis and pivot order —
// the per-Newton-iteration cost once the pattern is frozen.
func BenchmarkSparseLURefactor(b *testing.B) {
	a := benchMatrix(2000)
	f, err := SparseLUFactor(a, 0.001)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Refactor(a); err != nil {
			b.Fatal(err)
		}
	}
}

// batchBenchFamily is the 64-job same-pattern workload of the batched-LU
// benchmarks: one sweep group's worth of line Jacobians.
func batchBenchFamily() []*CSR { return batchFamily(1000, 64, 77) }

// BenchmarkBatchLU64 factors 64 same-pattern matrices through one shared
// symbolic analysis — one symbolic phase plus 64 numeric sweeps.
func BenchmarkBatchLU64(b *testing.B) {
	fam := batchBenchFamily()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl, err := NewBatchLU(fam[0], 0.001, len(fam))
		if err != nil {
			b.Fatal(err)
		}
		for _, a := range fam {
			if _, err := bl.Add(a); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(bl.Fallbacks), "fallbacks")
	}
}

// BenchmarkPerJobFactor64 is the per-job baseline BatchLU replaces: every
// matrix pays its own symbolic analysis and pivot search.
func BenchmarkPerJobFactor64(b *testing.B) {
	fam := batchBenchFamily()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range fam {
			if _, err := SparseLUFactor(a, 0.001); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSparseLUSolveSteadyState is the factorisation-owned-scratch solve
// path; allocs/op must stay at zero.
func BenchmarkSparseLUSolveSteadyState(b *testing.B) {
	a := benchMatrix(2000)
	f, err := SparseLUFactor(a, 0.001)
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, 2000)
	x := make([]float64, 2000)
	for i := range rhs {
		rhs[i] = float64(i%13) - 6
	}
	f.Solve(rhs, x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Solve(rhs, x)
	}
}

// BenchmarkGMRESSolverSteadyState is a held GMRESSolver re-solving a fixed
// system — the per-Newton-iteration configuration; allocs/op must stay at
// zero once the workspace is warm.
func BenchmarkGMRESSolverSteadyState(b *testing.B) {
	const n = 2000
	d := make([]float64, n)
	rhs := make([]float64, n)
	for i := range d {
		d[i] = 2 + float64(i%9)
		rhs[i] = float64(i%7) - 3
	}
	tr := NewTriplet(n, n)
	for i, v := range d {
		tr.Append(i, i, v)
	}
	m := tr.Compress()
	op := AsOperator(m)
	var s GMRESSolver
	x := make([]float64, n)
	opt := GMRESOptions{Tol: 1e-10}
	if _, err := s.Solve(op, rhs, x, opt); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Fill(x, 0)
		if _, err := s.Solve(op, rhs, x, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTripletCompress is the allocating per-iteration rebuild the
// in-place stamping path replaces.
func BenchmarkTripletCompress(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	tr := NewTriplet(1200, 1200)
	for k := 0; k < 12000; k++ {
		tr.Append(rng.Intn(1200), rng.Intn(1200), rng.NormFloat64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.Compress()
	}
}

// BenchmarkRowStamperRestamp is the in-place replacement: same 12k stamps
// into a frozen pattern.
func BenchmarkRowStamperRestamp(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	tr := NewTriplet(1200, 1200)
	for k := 0; k < 12000; k++ {
		tr.Append(rng.Intn(1200), rng.Intn(1200), rng.NormFloat64())
	}
	pb := NewPatternBuilder(1200, 1200)
	for k := range tr.V {
		pb.Add(tr.I[k], tr.J[k])
	}
	m := pb.Build()
	// Row-sorted stamp order, as the grid assembler produces.
	order := make([][]int, 1200)
	for k := range tr.V {
		order[tr.I[k]] = append(order[tr.I[k]], k)
	}
	st := NewRowStamper(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.ZeroRows(0, 1200)
		for row := 0; row < 1200; row++ {
			st.SetRow(row)
			for _, k := range order[row] {
				st.Add(tr.J[k], tr.V[k])
			}
		}
	}
}
