package la

import (
	"math/rand"
	"testing"
)

// benchMatrix builds a banded-plus-random sparse system resembling the MPDE
// grid Jacobian's profile.
func benchMatrix(n int) *CSR {
	rng := rand.New(rand.NewSource(42))
	tr := NewTriplet(n, n)
	for i := 0; i < n; i++ {
		tr.Append(i, i, 6+rng.Float64())
		for _, off := range []int{-2, -1, 1, 2} {
			j := i + off
			if j >= 0 && j < n {
				tr.Append(i, j, rng.NormFloat64())
			}
		}
		tr.Append(i, rng.Intn(n), 0.3*rng.NormFloat64())
	}
	return tr.Compress()
}

// BenchmarkSparseLUFactor is the full symbolic+numeric factorisation.
func BenchmarkSparseLUFactor(b *testing.B) {
	a := benchMatrix(2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SparseLUFactor(a, 0.001); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSparseLURefactor reuses the symbolic analysis and pivot order —
// the per-Newton-iteration cost once the pattern is frozen.
func BenchmarkSparseLURefactor(b *testing.B) {
	a := benchMatrix(2000)
	f, err := SparseLUFactor(a, 0.001)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Refactor(a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTripletCompress is the allocating per-iteration rebuild the
// in-place stamping path replaces.
func BenchmarkTripletCompress(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	tr := NewTriplet(1200, 1200)
	for k := 0; k < 12000; k++ {
		tr.Append(rng.Intn(1200), rng.Intn(1200), rng.NormFloat64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.Compress()
	}
}

// BenchmarkRowStamperRestamp is the in-place replacement: same 12k stamps
// into a frozen pattern.
func BenchmarkRowStamperRestamp(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	tr := NewTriplet(1200, 1200)
	for k := 0; k < 12000; k++ {
		tr.Append(rng.Intn(1200), rng.Intn(1200), rng.NormFloat64())
	}
	pb := NewPatternBuilder(1200, 1200)
	for k := range tr.V {
		pb.Add(tr.I[k], tr.J[k])
	}
	m := pb.Build()
	// Row-sorted stamp order, as the grid assembler produces.
	order := make([][]int, 1200)
	for k := range tr.V {
		order[tr.I[k]] = append(order[tr.I[k]], k)
	}
	st := NewRowStamper(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.ZeroRows(0, 1200)
		for row := 0; row < 1200; row++ {
			st.SetRow(row)
			for _, k := range order[row] {
				st.Add(tr.J[k], tr.V[k])
			}
		}
	}
}
