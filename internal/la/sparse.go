package la

import (
	"fmt"
	"sort"
)

// Triplet is a coordinate-format sparse matrix builder. Duplicate entries are
// summed on compression, which matches MNA "stamping" semantics exactly.
type Triplet struct {
	Rows, Cols int
	I, J       []int
	V          []float64

	// Compression scratch, reused across CompressInto calls.
	scRowCount, scNext, scCol []int
	scVal                     []float64
}

// NewTriplet returns an empty builder for an r×c matrix.
func NewTriplet(r, c int) *Triplet {
	return &Triplet{Rows: r, Cols: c}
}

// Append records a(i,j) += v.
func (t *Triplet) Append(i, j int, v float64) {
	if i < 0 || i >= t.Rows || j < 0 || j >= t.Cols {
		panic(fmt.Sprintf("la: triplet index (%d,%d) out of range %dx%d", i, j, t.Rows, t.Cols))
	}
	t.I = append(t.I, i)
	t.J = append(t.J, j)
	t.V = append(t.V, v)
}

// Reset clears the builder while keeping capacity.
func (t *Triplet) Reset() {
	t.I = t.I[:0]
	t.J = t.J[:0]
	t.V = t.V[:0]
}

// Compress converts to CSR, summing duplicates.
func (t *Triplet) Compress() *CSR {
	return t.CompressInto(nil)
}

// CompressInto is Compress with caller-owned storage: the result is built
// into dst (pattern and values overwritten, slices grown only when capacity
// is short) and scratch buffers persist on the Triplet, so a hot loop that
// compresses the same-shaped matrix every iteration performs no steady-state
// allocations. dst == nil allocates a fresh matrix.
func (t *Triplet) CompressInto(dst *CSR) *CSR {
	if dst == nil {
		dst = &CSR{}
	}
	dst.Rows, dst.Cols = t.Rows, t.Cols
	nnzEst := len(t.V)
	t.scRowCount = growInts(t.scRowCount, t.Rows+1)
	rowCount := t.scRowCount
	for i := range rowCount {
		rowCount[i] = 0
	}
	for _, i := range t.I {
		rowCount[i+1]++
	}
	for i := 0; i < t.Rows; i++ {
		rowCount[i+1] += rowCount[i]
	}
	t.scCol = growInts(t.scCol, nnzEst)
	t.scVal = growFloats(t.scVal, nnzEst)
	t.scNext = growInts(t.scNext, t.Rows)
	colIdx, vals, next := t.scCol, t.scVal, t.scNext
	copy(next, rowCount[:t.Rows])
	for k, i := range t.I {
		p := next[i]
		colIdx[p] = t.J[k]
		vals[p] = t.V[k]
		next[i]++
	}
	dst.RowPtr = growInts(dst.RowPtr, t.Rows+1)
	dst.ColIdx = dst.ColIdx[:0]
	dst.Val = dst.Val[:0]
	dst.RowPtr[0] = 0
	for i := 0; i < t.Rows; i++ {
		lo, hi := rowCount[i], rowCount[i+1]
		sortRowSeg(colIdx[lo:hi], vals[lo:hi])
		prev := -1
		for k := lo; k < hi; k++ {
			if colIdx[k] == prev {
				dst.Val[len(dst.Val)-1] += vals[k]
				continue
			}
			dst.ColIdx = append(dst.ColIdx, colIdx[k])
			dst.Val = append(dst.Val, vals[k])
			prev = colIdx[k]
		}
		dst.RowPtr[i+1] = len(dst.Val)
	}
	return dst
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// sortRowSeg orders one row's (column, value) pairs by column with a stable
// insertion sort: MNA rows are short, the sort allocates nothing (unlike a
// sort.Interface conversion), and stability makes duplicate summation order
// — and therefore the compressed bits — independent of the sort.
func sortRowSeg(col []int, val []float64) {
	for k := 1; k < len(col); k++ {
		c, v := col[k], val[k]
		kk := k
		for kk > 0 && col[kk-1] > c {
			col[kk] = col[kk-1]
			val[kk] = val[kk-1]
			kk--
		}
		col[kk] = c
		val[kk] = v
	}
}

// CSR is a compressed-sparse-row matrix with sorted, duplicate-free columns in
// each row.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// At returns a(i,j) with a binary search over row i (0 if not stored).
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	cols := m.ColIdx[lo:hi]
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return m.Val[lo+k]
	}
	return 0
}

// MulVec computes y = A·x.
func (m *CSR) MulVec(x, y []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(ErrShape)
	}
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Val[k] * x[m.ColIdx[k]]
		}
		y[i] = s
	}
}

// MulVecAdd computes y += a·(A·x) without allocating.
func (m *CSR) MulVecAdd(a float64, x, y []float64) {
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Val[k] * x[m.ColIdx[k]]
		}
		y[i] += a * s
	}
}

// Dense expands the matrix (for tests and tiny systems only).
func (m *CSR) Dense() *Dense {
	d := NewDense(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			d.Set(i, m.ColIdx[k], m.Val[k])
		}
	}
	return d
}

// Clone deep-copies the matrix.
func (m *CSR) Clone() *CSR {
	c := &CSR{Rows: m.Rows, Cols: m.Cols,
		RowPtr: append([]int(nil), m.RowPtr...),
		ColIdx: append([]int(nil), m.ColIdx...),
		Val:    append([]float64(nil), m.Val...)}
	return c
}

// Transpose returns Aᵀ in CSR form.
func (m *CSR) Transpose() *CSR {
	t := &CSR{Rows: m.Cols, Cols: m.Rows, RowPtr: make([]int, m.Cols+1)}
	for _, j := range m.ColIdx {
		t.RowPtr[j+1]++
	}
	for i := 0; i < t.Rows; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	t.ColIdx = make([]int, m.NNZ())
	t.Val = make([]float64, m.NNZ())
	next := make([]int, t.Rows)
	copy(next, t.RowPtr[:t.Rows])
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			p := next[j]
			t.ColIdx[p] = i
			t.Val[p] = m.Val[k]
			next[j]++
		}
	}
	return t
}

// DiagIndex returns, for each row i, the position k in Val of a(i,i), or -1
// when the diagonal entry is structurally absent.
func (m *CSR) DiagIndex() []int {
	idx := make([]int, m.Rows)
	for i := range idx {
		idx[i] = -1
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if m.ColIdx[k] == i {
				idx[i] = k
				break
			}
		}
	}
	return idx
}
