package la

import (
	"fmt"
	"sort"
)

// Triplet is a coordinate-format sparse matrix builder. Duplicate entries are
// summed on compression, which matches MNA "stamping" semantics exactly.
type Triplet struct {
	Rows, Cols int
	I, J       []int
	V          []float64
}

// NewTriplet returns an empty builder for an r×c matrix.
func NewTriplet(r, c int) *Triplet {
	return &Triplet{Rows: r, Cols: c}
}

// Append records a(i,j) += v.
func (t *Triplet) Append(i, j int, v float64) {
	if i < 0 || i >= t.Rows || j < 0 || j >= t.Cols {
		panic(fmt.Sprintf("la: triplet index (%d,%d) out of range %dx%d", i, j, t.Rows, t.Cols))
	}
	t.I = append(t.I, i)
	t.J = append(t.J, j)
	t.V = append(t.V, v)
}

// Reset clears the builder while keeping capacity.
func (t *Triplet) Reset() {
	t.I = t.I[:0]
	t.J = t.J[:0]
	t.V = t.V[:0]
}

// Compress converts to CSR, summing duplicates.
func (t *Triplet) Compress() *CSR {
	nnzEst := len(t.V)
	rowCount := make([]int, t.Rows+1)
	for _, i := range t.I {
		rowCount[i+1]++
	}
	for i := 0; i < t.Rows; i++ {
		rowCount[i+1] += rowCount[i]
	}
	colIdx := make([]int, nnzEst)
	vals := make([]float64, nnzEst)
	next := make([]int, t.Rows)
	copy(next, rowCount[:t.Rows])
	for k, i := range t.I {
		p := next[i]
		colIdx[p] = t.J[k]
		vals[p] = t.V[k]
		next[i]++
	}
	// Sort each row by column and merge duplicates.
	m := &CSR{Rows: t.Rows, Cols: t.Cols, RowPtr: make([]int, t.Rows+1)}
	for i := 0; i < t.Rows; i++ {
		lo, hi := rowCount[i], rowCount[i+1]
		seg := rowSeg{colIdx[lo:hi], vals[lo:hi]}
		sort.Sort(seg)
		prev := -1
		for k := lo; k < hi; k++ {
			if colIdx[k] == prev {
				m.Val[len(m.Val)-1] += vals[k]
				continue
			}
			m.ColIdx = append(m.ColIdx, colIdx[k])
			m.Val = append(m.Val, vals[k])
			prev = colIdx[k]
		}
		m.RowPtr[i+1] = len(m.Val)
	}
	return m
}

type rowSeg struct {
	col []int
	val []float64
}

func (s rowSeg) Len() int           { return len(s.col) }
func (s rowSeg) Less(i, j int) bool { return s.col[i] < s.col[j] }
func (s rowSeg) Swap(i, j int) {
	s.col[i], s.col[j] = s.col[j], s.col[i]
	s.val[i], s.val[j] = s.val[j], s.val[i]
}

// CSR is a compressed-sparse-row matrix with sorted, duplicate-free columns in
// each row.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// At returns a(i,j) with a binary search over row i (0 if not stored).
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	cols := m.ColIdx[lo:hi]
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return m.Val[lo+k]
	}
	return 0
}

// MulVec computes y = A·x.
func (m *CSR) MulVec(x, y []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(ErrShape)
	}
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Val[k] * x[m.ColIdx[k]]
		}
		y[i] = s
	}
}

// MulVecAdd computes y += a·(A·x) without allocating.
func (m *CSR) MulVecAdd(a float64, x, y []float64) {
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Val[k] * x[m.ColIdx[k]]
		}
		y[i] += a * s
	}
}

// Dense expands the matrix (for tests and tiny systems only).
func (m *CSR) Dense() *Dense {
	d := NewDense(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			d.Set(i, m.ColIdx[k], m.Val[k])
		}
	}
	return d
}

// Clone deep-copies the matrix.
func (m *CSR) Clone() *CSR {
	c := &CSR{Rows: m.Rows, Cols: m.Cols,
		RowPtr: append([]int(nil), m.RowPtr...),
		ColIdx: append([]int(nil), m.ColIdx...),
		Val:    append([]float64(nil), m.Val...)}
	return c
}

// Transpose returns Aᵀ in CSR form.
func (m *CSR) Transpose() *CSR {
	t := &CSR{Rows: m.Cols, Cols: m.Rows, RowPtr: make([]int, m.Cols+1)}
	for _, j := range m.ColIdx {
		t.RowPtr[j+1]++
	}
	for i := 0; i < t.Rows; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	t.ColIdx = make([]int, m.NNZ())
	t.Val = make([]float64, m.NNZ())
	next := make([]int, t.Rows)
	copy(next, t.RowPtr[:t.Rows])
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			p := next[j]
			t.ColIdx[p] = i
			t.Val[p] = m.Val[k]
			next[j]++
		}
	}
	return t
}

// DiagIndex returns, for each row i, the position k in Val of a(i,i), or -1
// when the diagonal entry is structurally absent.
func (m *CSR) DiagIndex() []int {
	idx := make([]int, m.Rows)
	for i := range idx {
		idx[i] = -1
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if m.ColIdx[k] == i {
				idx[i] = k
				break
			}
		}
	}
	return idx
}
