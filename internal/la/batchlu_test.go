package la

import (
	"math"
	"math/rand"
	"testing"
)

// batchFamily builds count same-pattern matrices with different values,
// shaped like the banded MPDE line Jacobians the batch path targets.
func batchFamily(n, count int, seed int64) []*CSR {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*CSR, count)
	for c := 0; c < count; c++ {
		tr := NewTriplet(n, n)
		for i := 0; i < n; i++ {
			tr.Append(i, i, 5+rng.Float64())
			for _, off := range []int{-2, -1, 1, 2} {
				if j := i + off; j >= 0 && j < n {
					tr.Append(i, j, rng.NormFloat64())
				}
			}
		}
		out[c] = tr.Compress()
	}
	return out
}

func TestBatchLUMatchesFreshFactorisation(t *testing.T) {
	const n, count = 60, 8
	fam := batchFamily(n, count, 7)
	b, err := NewBatchLU(fam[0], 0.001, count)
	if err != nil {
		t.Fatal(err)
	}
	if b.N() != n {
		t.Fatalf("N() = %d, want %d", b.N(), n)
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = math.Sin(float64(i + 1))
	}
	for c, a := range fam {
		k, err := b.Add(a)
		if err != nil {
			t.Fatalf("Add(%d): %v", c, err)
		}
		if k != c {
			t.Fatalf("Add(%d) slot = %d", c, k)
		}
	}
	if b.Len() != count {
		t.Fatalf("Len = %d, want %d", b.Len(), count)
	}
	if b.Refactored != count || b.Fallbacks != 0 {
		t.Fatalf("Refactored/Fallbacks = %d/%d, want %d/0", b.Refactored, b.Fallbacks, count)
	}
	x := make([]float64, n)
	want := make([]float64, n)
	for c, a := range fam {
		b.Solve(c, rhs, x)
		ref, err := SparseLUFactor(a, 0.001)
		if err != nil {
			t.Fatal(err)
		}
		ref.Solve(rhs, want)
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("slot %d: x[%d] = %v, want %v", c, i, x[i], want[i])
			}
		}
	}
}

// TestBatchLUFallbackSlot drives one slot through the frozen-pivot growth
// bailout: the representative keeps the diagonal pivots, and a same-pattern
// matrix with a tiny (0,0) entry makes that order unstable. The slot must
// silently re-pivot via a fresh factorisation and still solve correctly.
func TestBatchLUFallbackSlot(t *testing.T) {
	build := func(a00 float64) *CSR {
		tr := NewTriplet(2, 2)
		tr.Append(0, 0, a00)
		tr.Append(0, 1, 1)
		tr.Append(1, 0, 1)
		tr.Append(1, 1, 2)
		return tr.Compress()
	}
	rep := build(1)
	bad := build(1e-12) // growth 1/1e-12 ≫ refactorGrowth under the frozen order
	b, err := NewBatchLU(rep, 0.001, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Add(rep); err != nil {
		t.Fatal(err)
	}
	k, err := b.Add(bad)
	if err != nil {
		t.Fatalf("fallback Add: %v", err)
	}
	if b.Fallbacks != 1 || b.Refactored != 1 {
		t.Fatalf("Refactored/Fallbacks = %d/%d, want 1/1", b.Refactored, b.Fallbacks)
	}
	x := make([]float64, 2)
	b.Solve(k, []float64{1, 0}, x)
	// Exact inverse of [[1e-12,1],[1,2]]·x = [1,0].
	r0 := 1e-12*x[0] + x[1] - 1
	r1 := x[0] + 2*x[1]
	if math.Abs(r0) > 1e-9 || math.Abs(r1) > 1e-9 {
		t.Fatalf("fallback slot residual (%v, %v)", r0, r1)
	}
}

func TestBatchLUResetReusesStorage(t *testing.T) {
	fam := batchFamily(40, 4, 11)
	b, err := NewBatchLU(fam[0], 0.001, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range fam {
		if _, err := b.Add(a); err != nil {
			t.Fatal(err)
		}
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("Len after Reset = %d", b.Len())
	}
	if b.Refactored != 4 {
		t.Fatalf("Reset cleared counters: Refactored = %d", b.Refactored)
	}
	// A second round must produce the same answers as fresh factorisation.
	fam2 := batchFamily(40, 4, 13)
	rhs := make([]float64, 40)
	for i := range rhs {
		rhs[i] = float64(i%5) - 2
	}
	x, want := make([]float64, 40), make([]float64, 40)
	for c, a := range fam2 {
		if _, err := b.Add(a); err != nil {
			t.Fatal(err)
		}
		b.Solve(c, rhs, x)
		ref, _ := SparseLUFactor(a, 0.001)
		ref.Solve(rhs, want)
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("round 2 slot %d: x[%d] = %v, want %v", c, i, x[i], want[i])
			}
		}
	}
}

func TestBatchLUAddRejectsPatternMismatch(t *testing.T) {
	fam := batchFamily(20, 1, 3)
	b, err := NewBatchLU(fam[0], 0.001, 1)
	if err != nil {
		t.Fatal(err)
	}
	other := batchFamily(21, 1, 3)[0]
	if _, err := b.Add(other); err == nil {
		t.Fatal("Add accepted a different pattern")
	}
	if b.Len() != 0 {
		t.Fatalf("failed Add consumed a slot: Len = %d", b.Len())
	}
}

func TestCloneSymbolicIndependence(t *testing.T) {
	fam := batchFamily(30, 2, 17)
	f, err := SparseLUFactor(fam[0], 0.001)
	if err != nil {
		t.Fatal(err)
	}
	c := f.CloneSymbolic()
	if err := c.Refactor(fam[1]); err != nil {
		t.Fatal(err)
	}
	rhs := make([]float64, 30)
	for i := range rhs {
		rhs[i] = 1 / float64(i+1)
	}
	// The clone solves fam[1]; the original still solves fam[0].
	x, want := make([]float64, 30), make([]float64, 30)
	c.Solve(rhs, x)
	ref1, _ := SparseLUFactor(fam[1], 0.001)
	ref1.Solve(rhs, want)
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("clone: x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
	f.Solve(rhs, x)
	ref0, _ := SparseLUFactor(fam[0], 0.001)
	ref0.Solve(rhs, want)
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("original after clone refactor: x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestLUSharePublishAcquire(t *testing.T) {
	fam := batchFamily(30, 3, 23)
	var s *LUShare
	s.Publish(nil) // nil receiver and nil factor are both no-ops
	if s.Acquire(fam[0]) != nil {
		t.Fatal("nil LUShare acquired a factorisation")
	}
	s = &LUShare{}
	if s.Acquire(fam[0]) != nil {
		t.Fatal("empty LUShare acquired a factorisation")
	}
	leader, err := SparseLUFactor(fam[0], 0.001)
	if err != nil {
		t.Fatal(err)
	}
	s.Publish(leader)
	// The published snapshot must be frozen at publish time: the leader
	// keeps refactoring its own factorisation afterwards.
	if err := leader.Refactor(fam[2]); err != nil {
		t.Fatal(err)
	}
	got := s.Acquire(fam[1])
	if got == nil {
		t.Fatal("Acquire returned nil for a same-pattern matrix")
	}
	if err := got.Refactor(fam[1]); err != nil {
		t.Fatalf("acquired clone Refactor: %v", err)
	}
	rhs := make([]float64, 30)
	for i := range rhs {
		rhs[i] = math.Cos(float64(i))
	}
	x, want := make([]float64, 30), make([]float64, 30)
	got.Solve(rhs, x)
	ref, _ := SparseLUFactor(fam[1], 0.001)
	ref.Solve(rhs, want)
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("acquired clone: x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
	// Pattern mismatch → nil, never a wrong-shape factorisation.
	if s.Acquire(batchFamily(31, 1, 23)[0]) != nil {
		t.Fatal("Acquire matched a different pattern")
	}
}
