package la

import (
	"math"
	"testing"
)

// The hot-path allocation contracts: once warm, a Newton iteration's linear
// algebra — numeric refactorisation, triangular solve, a GMRES solve on a
// held solver — runs without touching the allocator. These are regression
// gates (CI runs them without -race); the bound is exactly zero.

func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation bounds do not hold under the race detector")
	}
}

func TestSparseLUSolveNoAllocs(t *testing.T) {
	skipUnderRace(t)
	a := batchFamily(200, 1, 31)[0]
	f, err := SparseLUFactor(a, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 200)
	x := make([]float64, 200)
	for i := range b {
		b[i] = math.Sin(float64(i))
	}
	f.Solve(b, x) // warm-up sizes the owned scratch
	if allocs := testing.AllocsPerRun(100, func() { f.Solve(b, x) }); allocs != 0 {
		t.Fatalf("SparseLU.Solve allocates %v/op, want 0", allocs)
	}
}

func TestSparseLUSolveAliasing(t *testing.T) {
	a := batchFamily(50, 1, 37)[0]
	f, err := SparseLUFactor(a, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 50)
	for i := range b {
		b[i] = float64(i%3) + 0.5
	}
	want := make([]float64, 50)
	f.Solve(b, want)
	// x aliasing b must give the same answer.
	inPlace := append([]float64(nil), b...)
	f.Solve(inPlace, inPlace)
	for i := range want {
		if math.Abs(inPlace[i]-want[i]) > 1e-14*(1+math.Abs(want[i])) {
			t.Fatalf("aliased solve diverges at %d: %v vs %v", i, inPlace[i], want[i])
		}
	}
}

func TestSparseLURefactorNoAllocs(t *testing.T) {
	skipUnderRace(t)
	fam := batchFamily(200, 2, 41)
	f, err := SparseLUFactor(fam[0], 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Refactor(fam[1]); err != nil { // warm-up sizes the scratch
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if err := f.Refactor(fam[1]); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("SparseLU.Refactor allocates %v/op, want 0", allocs)
	}
}

func TestGMRESSolverSteadyStateNoAllocs(t *testing.T) {
	skipUnderRace(t)
	const n = 120
	d := make([]float64, n)
	b := make([]float64, n)
	for i := range d {
		d[i] = 2 + float64(i%5)
		b[i] = math.Cos(float64(i))
	}
	m := diagCSR(d)
	op := AsOperator(m)
	var s GMRESSolver
	x := make([]float64, n)
	opt := GMRESOptions{Tol: 1e-10}
	if _, err := s.Solve(op, b, x, opt); err != nil { // warm-up grows the workspace
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		Fill(x, 0)
		if _, err := s.Solve(op, b, x, opt); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("GMRESSolver.Solve allocates %v/op at steady state, want 0", allocs)
	}
}
