package la

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func diagCSR(d []float64) *CSR {
	tr := NewTriplet(len(d), len(d))
	for i, v := range d {
		tr.Append(i, i, v)
	}
	return tr.Compress()
}

// TestGMRESEarlyTerminationLowDegree: an operator with two distinct
// eigenvalues has minimal polynomial degree 2, so GMRES must hit the inner
// small-residual break and leave the Arnoldi cycle after two iterations —
// long before the restart length.
func TestGMRESEarlyTerminationLowDegree(t *testing.T) {
	const n = 12
	d := make([]float64, n)
	for i := range d {
		if i%2 == 0 {
			d[i] = 1
		} else {
			d[i] = 3
		}
	}
	m := diagCSR(d)
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i + 1)
	}
	x := make([]float64, n)
	res, err := GMRES(AsOperator(m), b, x, GMRESOptions{Tol: 1e-12})
	if err != nil || !res.Converged {
		t.Fatalf("GMRES failed: %v (res %+v)", err, res)
	}
	if res.Iterations > 2 {
		t.Fatalf("degree-2 operator took %d iterations, want ≤ 2", res.Iterations)
	}
	for i := range x {
		if math.Abs(x[i]-b[i]/d[i]) > 1e-10 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], b[i]/d[i])
		}
	}
}

// TestGMRESMaxIterExhaustedMidRestart caps the iteration budget so it runs
// out partway through a second Arnoldi cycle: the solver must still solve
// the partial least-squares problem, report the true iteration count, and
// return ErrNoConvergence rather than panic or spin.
func TestGMRESMaxIterExhaustedMidRestart(t *testing.T) {
	const n = 60
	rng := rand.New(rand.NewSource(9))
	tr := NewTriplet(n, n)
	for i := 0; i < n; i++ {
		tr.Append(i, i, 1+0.1*rng.Float64())
		tr.Append(i, (i+7)%n, rng.NormFloat64())
		tr.Append(i, (i+29)%n, rng.NormFloat64())
	}
	m := tr.Compress()
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	res, err := GMRES(AsOperator(m), b, x, GMRESOptions{MaxIter: 5, Restart: 4, Tol: 1e-15})
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
	if res.Converged || res.Iterations != 5 {
		t.Fatalf("res = %+v, want 5 iterations, not converged", res)
	}
	// The partial second cycle's update must still be applied: the returned
	// residual is the true relative residual of x.
	r := make([]float64, n)
	m.MulVec(x, r)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	if got := Norm2(r) / Norm2(b); math.Abs(got-res.Residual) > 1e-12 {
		t.Fatalf("reported residual %v, recomputed %v", res.Residual, got)
	}
}

// TestGMRESSolverWorkspaceReuse runs one solver across shrinking and growing
// problem sizes: the lazily grown workspace must slice down correctly for
// smaller systems and regrow for larger ones.
func TestGMRESSolverWorkspaceReuse(t *testing.T) {
	var s GMRESSolver
	for _, n := range []int{40, 12, 64} {
		d := make([]float64, n)
		b := make([]float64, n)
		for i := range d {
			d[i] = 2 + float64(i%7)
			b[i] = math.Sin(float64(i + 1))
		}
		m := diagCSR(d)
		x := make([]float64, n)
		res, err := s.Solve(AsOperator(m), b, x, GMRESOptions{Tol: 1e-12})
		if err != nil || !res.Converged {
			t.Fatalf("n=%d: GMRES failed: %v (res %+v)", n, err, res)
		}
		for i := range x {
			if math.Abs(x[i]-b[i]/d[i]) > 1e-10 {
				t.Fatalf("n=%d: x[%d] = %v, want %v", n, i, x[i], b[i]/d[i])
			}
		}
	}
}
