package la

import (
	"fmt"
	"math"
	"math/cmplx"
)

// CDense is a row-major dense complex matrix, used by the harmonic-balance
// solver whose Jacobians live in the frequency domain.
type CDense struct {
	Rows, Cols int
	Data       []complex128
}

// NewCDense returns a zeroed r×c complex matrix.
func NewCDense(r, c int) *CDense {
	return &CDense{Rows: r, Cols: c, Data: make([]complex128, r*c)}
}

// At returns the element at (i, j).
func (m *CDense) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *CDense) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into (i, j).
func (m *CDense) Add(i, j int, v complex128) { m.Data[i*m.Cols+j] += v }

// Row returns a view of row i.
func (m *CDense) Row(i int) []complex128 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone deep-copies the matrix.
func (m *CDense) Clone() *CDense {
	c := NewCDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero resets all entries.
func (m *CDense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MulVec computes y = A·x.
func (m *CDense) MulVec(x, y []complex128) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(ErrShape)
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := complex(0, 0)
		for j, a := range row {
			s += a * x[j]
		}
		y[i] = s
	}
}

// CLU is a dense complex LU factorisation with partial pivoting.
type CLU struct {
	n   int
	lu  *CDense
	piv []int
}

// CDenseLU factors A with partial pivoting on |·|.
func CDenseLU(a *CDense) (*CLU, error) {
	if a.Rows != a.Cols {
		return nil, ErrShape
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	for k := 0; k < n; k++ {
		p, mx := k, cmplx.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := cmplx.Abs(lu.At(i, k)); a > mx {
				p, mx = i, a
			}
		}
		if mx == 0 {
			return nil, fmt.Errorf("%w (complex pivot column %d)", ErrSingular, k)
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
		}
		pv := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pv
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return &CLU{n: n, lu: lu, piv: piv}, nil
}

// Solve solves A·x = b (x may alias b).
func (f *CLU) Solve(b, x []complex128) {
	n := f.n
	if len(b) != n || len(x) != n {
		panic(ErrShape)
	}
	y := make([]complex128, n)
	for i := 0; i < n; i++ {
		y[i] = b[f.piv[i]]
	}
	for i := 1; i < n; i++ {
		ri := f.lu.Row(i)
		s := y[i]
		for j := 0; j < i; j++ {
			s -= ri[j] * y[j]
		}
		y[i] = s
	}
	for i := n - 1; i >= 0; i-- {
		ri := f.lu.Row(i)
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= ri[j] * y[j]
		}
		y[i] = s / ri[i]
	}
	copy(x, y)
}

// CNorm2 returns the Euclidean norm of a complex vector.
func CNorm2(x []complex128) float64 {
	s := 0.0
	for _, v := range x {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return math.Sqrt(s)
}

// CNormInf returns max |x_i| of a complex vector.
func CNormInf(x []complex128) float64 {
	mx := 0.0
	for _, v := range x {
		if a := cmplx.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}
