package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSparse(rng *rand.Rand, n int, density float64) *CSR {
	tr := NewTriplet(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() > density {
				continue
			}
			v := rng.NormFloat64()
			if i == j {
				v += float64(n) // diagonal dominance
			}
			tr.Append(i, j, v)
		}
	}
	return tr.Compress()
}

func TestTripletCompressSumsDuplicates(t *testing.T) {
	tr := NewTriplet(2, 2)
	tr.Append(0, 0, 1)
	tr.Append(0, 0, 2)
	tr.Append(1, 0, 5)
	tr.Append(0, 1, -1)
	m := tr.Compress()
	if m.At(0, 0) != 3 {
		t.Fatalf("duplicate sum = %v, want 3", m.At(0, 0))
	}
	if m.At(1, 0) != 5 || m.At(0, 1) != -1 || m.At(1, 1) != 0 {
		t.Fatalf("unexpected entries: %v", m.Dense())
	}
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", m.NNZ())
	}
}

func TestTripletResetKeepsCapacity(t *testing.T) {
	tr := NewTriplet(4, 4)
	tr.Append(0, 0, 1)
	tr.Reset()
	if len(tr.I) != 0 {
		t.Fatal("Reset should empty the builder")
	}
	tr.Append(1, 1, 2)
	if got := tr.Compress().At(1, 1); got != 2 {
		t.Fatalf("after reset, At(1,1)=%v", got)
	}
}

func TestTripletAppendOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range append")
		}
	}()
	NewTriplet(2, 2).Append(2, 0, 1)
}

func TestCSRMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := randomSparse(rng, 25, 0.2)
	d := m.Dense()
	x := make([]float64, 25)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	ys := make([]float64, 25)
	yd := make([]float64, 25)
	m.MulVec(x, ys)
	d.MulVec(x, yd)
	for i := range ys {
		if !almostEqual(ys[i], yd[i], 1e-13) {
			t.Fatalf("sparse/dense MulVec mismatch at %d: %v vs %v", i, ys[i], yd[i])
		}
	}
	// MulVecAdd path
	y2 := append([]float64(nil), ys...)
	m.MulVecAdd(-1, x, y2)
	for i := range y2 {
		if math.Abs(y2[i]) > 1e-12*(1+math.Abs(ys[i])) {
			t.Fatalf("MulVecAdd(-1) should cancel: y2[%d]=%v", i, y2[i])
		}
	}
}

func TestCSRTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randomSparse(rng, 17, 0.15)
	tt := m.Transpose().Transpose()
	dm, dt := m.Dense(), tt.Dense()
	for i := range dm.Data {
		if dm.Data[i] != dt.Data[i] {
			t.Fatal("transpose twice != original")
		}
	}
}

func TestCSRDiagIndex(t *testing.T) {
	tr := NewTriplet(3, 3)
	tr.Append(0, 0, 1)
	tr.Append(1, 2, 1) // row 1 has no diagonal
	tr.Append(2, 2, 4)
	m := tr.Compress()
	idx := m.DiagIndex()
	if idx[0] < 0 || idx[2] < 0 {
		t.Fatal("present diagonals not found")
	}
	if idx[1] != -1 {
		t.Fatal("missing diagonal should be -1")
	}
	if m.Val[idx[2]] != 4 {
		t.Fatalf("diag value = %v, want 4", m.Val[idx[2]])
	}
}

func TestSparseLUMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(30)
		m := randomSparse(rng, n, 0.25)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		f, err := SparseLUFactor(m, 0.1)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		xs := make([]float64, n)
		f.Solve(b, xs)
		xd, err := SolveDense(m.Dense(), b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range xs {
			if !almostEqual(xs[i], xd[i], 1e-8) {
				t.Fatalf("trial %d: x[%d] sparse %v dense %v", trial, i, xs[i], xd[i])
			}
		}
	}
}

func TestSparseLUSingular(t *testing.T) {
	tr := NewTriplet(2, 2)
	tr.Append(0, 0, 1)
	tr.Append(0, 1, 2)
	tr.Append(1, 0, 2)
	tr.Append(1, 1, 4)
	if _, err := SparseLUFactor(tr.Compress(), 1); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestSparseLUPermutedIdentity(t *testing.T) {
	// A pure permutation matrix exercises pivoting with no arithmetic.
	n := 6
	tr := NewTriplet(n, n)
	for i := 0; i < n; i++ {
		tr.Append(i, (i+3)%n, 1)
	}
	m := tr.Compress()
	f, err := SparseLUFactor(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, 2, 3, 4, 5, 6}
	x := make([]float64, n)
	f.Solve(b, x)
	res := make([]float64, n)
	m.MulVec(x, res)
	for i := range res {
		if !almostEqual(res[i], b[i], 1e-14) {
			t.Fatalf("residual at %d: %v vs %v", i, res[i], b[i])
		}
	}
}

func TestSparseLUResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		m := randomSparse(rng, n, 0.3)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		lu, err := SparseLUFactor(m, 0.001)
		if err != nil {
			return false
		}
		x := make([]float64, n)
		lu.Solve(b, x)
		r := make([]float64, n)
		m.MulVec(x, r)
		Axpy(-1, b, r)
		return Norm2(r) < 1e-8*(1+Norm2(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGMRESSolvesSparseSystem(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 60
	m := randomSparse(rng, n, 0.1)
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	res, err := GMRES(AsOperator(m), b, x, GMRESOptions{Tol: 1e-12})
	if err != nil {
		t.Fatalf("GMRES failed: %v (res %+v)", err, res)
	}
	r := make([]float64, n)
	m.MulVec(x, r)
	Axpy(-1, b, r)
	if Norm2(r) > 1e-9*(1+Norm2(b)) {
		t.Fatalf("GMRES residual too large: %v", Norm2(r))
	}
}

func TestGMRESWithILU0ConvergesFaster(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 120
	m := randomSparse(rng, n, 0.05)
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x0 := make([]float64, n)
	plain, err := GMRES(AsOperator(m), b, x0, GMRESOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	ilu, err := NewILU0(m)
	if err != nil {
		t.Fatal(err)
	}
	x1 := make([]float64, n)
	pre, err := GMRES(AsOperator(m), b, x1, GMRESOptions{Tol: 1e-10, M: ilu})
	if err != nil {
		t.Fatal(err)
	}
	if pre.Iterations > plain.Iterations {
		t.Fatalf("ILU0 did not help: %d vs %d iterations", pre.Iterations, plain.Iterations)
	}
}

func TestGMRESZeroRHS(t *testing.T) {
	m := randomSparse(rand.New(rand.NewSource(1)), 10, 0.3)
	x := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	res, err := GMRES(AsOperator(m), make([]float64, 10), x, GMRESOptions{})
	if err != nil || !res.Converged {
		t.Fatalf("zero rhs should converge instantly: %v", err)
	}
	if NormInf(x) != 0 {
		t.Fatal("solution of A·x=0 should be 0")
	}
}

func TestGMRESNonConvergenceReported(t *testing.T) {
	// A rotation-like badly conditioned operator with a tiny iteration cap.
	tr := NewTriplet(4, 4)
	tr.Append(0, 1, 1)
	tr.Append(1, 2, 1)
	tr.Append(2, 3, 1)
	tr.Append(3, 0, 1e-8)
	m := tr.Compress()
	b := []float64{1, 1, 1, 1}
	x := make([]float64, 4)
	_, err := GMRES(AsOperator(m), b, x, GMRESOptions{MaxIter: 2, Restart: 2, Tol: 1e-15})
	if err == nil {
		t.Fatal("expected ErrNoConvergence with MaxIter=2")
	}
}

func TestILU0ExactForTriangularPattern(t *testing.T) {
	// For a lower-triangular matrix ILU(0) is exact, so one application solves.
	tr := NewTriplet(3, 3)
	tr.Append(0, 0, 2)
	tr.Append(1, 0, 1)
	tr.Append(1, 1, 3)
	tr.Append(2, 1, -1)
	tr.Append(2, 2, 4)
	m := tr.Compress()
	p, err := NewILU0(m)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{2, 4, 3}
	z := make([]float64, 3)
	p.Precondition(b, z)
	r := make([]float64, 3)
	m.MulVec(z, r)
	for i := range r {
		if !almostEqual(r[i], b[i], 1e-14) {
			t.Fatalf("ILU0 not exact on triangular: r=%v b=%v", r, b)
		}
	}
}

func TestILU0RequiresDiagonal(t *testing.T) {
	tr := NewTriplet(2, 2)
	tr.Append(0, 1, 1)
	tr.Append(1, 0, 1)
	if _, err := NewILU0(tr.Compress()); err == nil {
		t.Fatal("expected error for missing diagonal")
	}
}

func TestCDenseLUSolve(t *testing.T) {
	a := NewCDense(2, 2)
	a.Set(0, 0, complex(0, 1))
	a.Set(0, 1, 1)
	a.Set(1, 0, 2)
	a.Set(1, 1, complex(0, -1))
	f, err := CDenseLU(a)
	if err != nil {
		t.Fatal(err)
	}
	b := []complex128{complex(1, 1), complex(0, 2)}
	x := make([]complex128, 2)
	f.Solve(b, x)
	// Residual check.
	r := make([]complex128, 2)
	a.MulVec(x, r)
	for i := range r {
		if d := r[i] - b[i]; real(d)*real(d)+imag(d)*imag(d) > 1e-24 {
			t.Fatalf("complex residual %v", d)
		}
	}
}

func TestCDenseLUSingular(t *testing.T) {
	a := NewCDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := CDenseLU(a); err == nil {
		t.Fatal("expected singular complex matrix error")
	}
}

func TestCNorms(t *testing.T) {
	x := []complex128{complex(3, 4), 0}
	if CNorm2(x) != 5 {
		t.Fatalf("CNorm2 = %v", CNorm2(x))
	}
	if CNormInf(x) != 5 {
		t.Fatalf("CNormInf = %v", CNormInf(x))
	}
}
