package la

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// SparseLU is a left-looking sparse LU factorisation with partial pivoting
// (Gilbert–Peierls, in the style of CSparse's cs_lu): P·A = L·U, with L unit
// lower triangular. Both factors are stored column-wise.
//
// A factorisation remembers its symbolic analysis — the elimination pattern,
// the pivot order, and the column view of A — so a matrix with the same
// sparsity pattern but new values can be re-decomposed by Refactor at the
// cost of the numeric phase alone. This is the hot-path configuration of the
// MPDE Newton iteration, whose Jacobian pattern is fixed across iterations.
type SparseLU struct {
	n          int
	lp, li     []int
	lx         []float64
	up, ui     []int
	ux         []float64
	pinv       []int // original row i is pivotal for column pinv[i]
	FillFactor float64
	// FactorWall is the wall-clock time of the full (symbolic+numeric)
	// factorisation; RefactorWall accumulates the numeric-only Refactor
	// times against this analysis. Observability only — excluded from every
	// byte-stable export.
	FactorWall   time.Duration
	RefactorWall time.Duration

	// Symbolic-reuse state: a snapshot of the pattern the factorisation was
	// computed from (copies, not references — the caller may rebuild its
	// matrix in place, so aliasing the original slices would make the
	// pattern check vacuous) and the CSC view of A with a gather map into
	// the CSR value array.
	aRowPtr, aColIdx []int
	atp, ati, atMap  []int
	work             []float64 // refactor scratch
	swork            []float64 // solve scratch
}

// transposed column view of a with a gather map back into a.Val.
func cscView(a *CSR) (atp, ati, atMap []int, atv []float64) {
	n := a.Cols
	nnz := a.NNZ()
	atp = make([]int, n+1)
	for _, j := range a.ColIdx {
		atp[j+1]++
	}
	for j := 0; j < n; j++ {
		atp[j+1] += atp[j]
	}
	ati = make([]int, nnz)
	atMap = make([]int, nnz)
	atv = make([]float64, nnz)
	next := make([]int, n)
	copy(next, atp[:n])
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			p := next[j]
			ati[p] = i
			atMap[p] = k
			atv[p] = a.Val[k]
			next[j]++
		}
	}
	return atp, ati, atMap, atv
}

// SparseLUFactor computes P·A = L·U with threshold partial pivoting. tol in
// (0,1] controls diagonal preference: the diagonal entry is kept as pivot when
// |a_kk| ≥ tol·max|column|; tol=1 is classic partial pivoting, tol≈0.001 keeps
// fill low on diagonally dominant MNA systems. A must be square.
func SparseLUFactor(a *CSR, tol float64) (*SparseLU, error) {
	t0 := time.Now()
	if a.Rows != a.Cols {
		return nil, ErrShape
	}
	if tol <= 0 || tol > 1 {
		tol = 1
	}
	n := a.Rows
	// Column access: the CSC view of A (row j of Aᵀ is column j of A).
	atp, ati, atMap, atv := cscView(a)

	f := &SparseLU{n: n,
		aRowPtr: append([]int(nil), a.RowPtr...),
		aColIdx: append([]int(nil), a.ColIdx...),
		atp:     atp, ati: ati, atMap: atMap}
	f.lp = make([]int, n+1)
	f.up = make([]int, n+1)
	f.pinv = make([]int, n)
	for i := range f.pinv {
		f.pinv[i] = -1
	}
	x := make([]float64, n)
	xi := make([]int, n)     // topological pattern of the sparse solve
	stack := make([]int, n)  // DFS stack of nodes
	pstack := make([]int, n) // DFS stack of child positions
	mark := make([]int, n)   // visitation stamps
	stamp := 0

	for k := 0; k < n; k++ {
		// --- symbolic: pattern of x = L \ A(:,k) via DFS over L's columns ---
		stamp++
		top := n
		for p := atp[k]; p < atp[k+1]; p++ {
			root := ati[p]
			if mark[root] == stamp {
				continue
			}
			// Iterative DFS with explicit child-position stack.
			head := 0
			stack[0] = root
			for head >= 0 {
				j := stack[head]
				if mark[j] != stamp {
					mark[j] = stamp
					if jn := f.pinv[j]; jn >= 0 {
						pstack[head] = f.lp[jn] + 1 // skip unit diagonal entry
					} else {
						pstack[head] = 0 // no children
					}
				}
				done := true
				if jn := f.pinv[j]; jn >= 0 {
					for pp := pstack[head]; pp < f.lp[jn+1]; pp++ {
						child := f.li[pp]
						if mark[child] != stamp {
							pstack[head] = pp + 1
							head++
							stack[head] = child
							done = false
							break
						}
					}
				}
				if done {
					head--
					top--
					xi[top] = j
				}
			}
		}
		// --- numeric: scatter A(:,k) and run the sparse triangular solve ---
		for p := top; p < n; p++ {
			x[xi[p]] = 0
		}
		for p := atp[k]; p < atp[k+1]; p++ {
			x[ati[p]] = atv[p]
		}
		for p := top; p < n; p++ {
			j := xi[p]
			jn := f.pinv[j]
			if jn < 0 {
				continue
			}
			xj := x[j] // L has unit diagonal; no division
			for pp := f.lp[jn] + 1; pp < f.lp[jn+1]; pp++ {
				x[f.li[pp]] -= f.lx[pp] * xj
			}
		}
		// --- pivot selection among not-yet-pivotal rows ---
		ipiv, amax := -1, 0.0
		for p := top; p < n; p++ {
			j := xi[p]
			if f.pinv[j] < 0 {
				if a := math.Abs(x[j]); a > amax {
					ipiv, amax = j, a
				}
			}
		}
		if ipiv < 0 || amax == 0 {
			return nil, fmt.Errorf("%w (column %d)", ErrSingular, k)
		}
		// Prefer the diagonal when it is acceptably large (reduces fill).
		if f.pinv[k] < 0 && math.Abs(x[k]) >= tol*amax {
			ipiv = k
		}
		pivot := x[ipiv]
		f.pinv[ipiv] = k
		// --- append column k of U (pivotal rows) and L (non-pivotal rows) ---
		for p := top; p < n; p++ {
			j := xi[p]
			if jn := f.pinv[j]; jn >= 0 && j != ipiv {
				f.ui = append(f.ui, jn)
				f.ux = append(f.ux, x[j])
			}
		}
		f.ui = append(f.ui, k) // diagonal of U, stored last in its column
		f.ux = append(f.ux, pivot)
		f.up[k+1] = len(f.ux)

		f.li = append(f.li, ipiv) // unit diagonal of L, stored first
		f.lx = append(f.lx, 1)
		for p := top; p < n; p++ {
			j := xi[p]
			if f.pinv[j] < 0 {
				f.li = append(f.li, j)
				f.lx = append(f.lx, x[j]/pivot)
			}
		}
		f.lp[k+1] = len(f.lx)
	}
	// Remap L's row indices from original numbering to pivotal numbering.
	for p := range f.li {
		f.li[p] = f.pinv[f.li[p]]
	}
	// Sort each U column's off-diagonal entries by ascending pivotal row
	// (keeping the diagonal last). Solve is order-independent within a
	// column; Refactor relies on ascending order being topological.
	for k := 0; k < n; k++ {
		lo, hi := f.up[k], f.up[k+1]-1
		sort.Sort(uSeg{f.ui[lo:hi], f.ux[lo:hi]})
	}
	if nnz := a.NNZ(); nnz > 0 {
		f.FillFactor = float64(len(f.lx)+len(f.ux)) / float64(nnz)
	}
	f.FactorWall = time.Since(t0)
	return f, nil
}

type uSeg struct {
	row []int
	val []float64
}

func (s uSeg) Len() int           { return len(s.row) }
func (s uSeg) Less(i, j int) bool { return s.row[i] < s.row[j] }
func (s uSeg) Swap(i, j int) {
	s.row[i], s.row[j] = s.row[j], s.row[i]
	s.val[i], s.val[j] = s.val[j], s.val[i]
}

// refactorGrowth bounds the element growth a pivot-order-preserving
// refactorisation accepts before bailing out to a fresh factorisation.
const refactorGrowth = 1e8

// SamePattern reports whether a has exactly the sparsity pattern this
// factorisation was computed from, by comparing against the pattern
// snapshot taken at factor time. The O(nnz) integer compare is noise next
// to the numeric refactorisation it gates, and — unlike a slice-identity
// shortcut — it stays correct when the caller rebuilds a matrix in place
// (e.g. Triplet.CompressInto into the same destination).
func (f *SparseLU) SamePattern(a *CSR) bool {
	return a.Rows == f.n && a.Cols == f.n &&
		sameInts(a.RowPtr, f.aRowPtr) && sameInts(a.ColIdx, f.aColIdx)
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Refactor recomputes the numeric factorisation for a matrix with the same
// sparsity pattern as the one the factorisation was created from, reusing
// the symbolic analysis and the pivot order. It costs one sparse triangular
// sweep — no DFS, no pivot search, no allocation — which is the payoff for
// Jacobians whose pattern is fixed across Newton iterations. It fails (and
// leaves the factors unusable) when the pattern differs, a pivot vanishes,
// or element growth exceeds a stability bound; callers then fall back to
// SparseLUFactor.
//
//mpde:hotpath
func (f *SparseLU) Refactor(a *CSR) error {
	t0 := time.Now()
	err := f.refactorInto(a, f.lx, f.ux)
	f.RefactorWall += time.Since(t0)
	return err
}

// refactorInto runs the numeric-only refactorisation against the shared
// symbolic analysis, writing the factors into lx/ux (which must have the
// factorisation's own layout — either its private arrays or a batch slot
// initialised from them). L's unit-diagonal positions are never rewritten,
// so destination slots must already carry the 1s.
//
//mpde:hotpath
func (f *SparseLU) refactorInto(a *CSR, lx, ux []float64) error {
	if !f.SamePattern(a) { //mpde:coldpath pattern mismatch aborts the refactor
		return fmt.Errorf("la: refactor pattern mismatch (want the factored %d×%d pattern)", f.n, f.n)
	}
	n := f.n
	if f.work == nil { //mpde:alloc-ok lazy scratch init, amortised over refactors
		f.work = make([]float64, n)
	}
	x := f.work
	for k := 0; k < n; k++ {
		// Zero the column's pattern, scatter A(:,k) in pivotal numbering.
		for p := f.up[k]; p < f.up[k+1]; p++ {
			x[f.ui[p]] = 0
		}
		for p := f.lp[k]; p < f.lp[k+1]; p++ {
			x[f.li[p]] = 0
		}
		for p := f.atp[k]; p < f.atp[k+1]; p++ {
			x[f.pinv[f.ati[p]]] = a.Val[f.atMap[p]]
		}
		// Eliminate with the already-refactored columns: U's off-diagonal
		// entries ascend in pivotal order, which is topological here because
		// L(:,j) only updates rows with pivotal index > j.
		for p := f.up[k]; p < f.up[k+1]-1; p++ {
			j := f.ui[p]
			xj := x[j]
			ux[p] = xj
			if xj == 0 {
				continue
			}
			for q := f.lp[j] + 1; q < f.lp[j+1]; q++ {
				x[f.li[q]] -= lx[q] * xj
			}
		}
		pivot := x[k]
		maxBelow := 0.0
		for q := f.lp[k] + 1; q < f.lp[k+1]; q++ {
			if av := math.Abs(x[f.li[q]]); av > maxBelow {
				maxBelow = av
			}
		}
		if pivot == 0 || math.IsNaN(pivot) || maxBelow > refactorGrowth*math.Abs(pivot) { //mpde:coldpath singular pivot aborts the refactor
			return fmt.Errorf("%w (refactor: unstable pivot %.3e at column %d)", ErrSingular, pivot, k)
		}
		ux[f.up[k+1]-1] = pivot
		for q := f.lp[k] + 1; q < f.lp[k+1]; q++ {
			lx[q] = x[f.li[q]] / pivot
		}
	}
	return nil
}

// Solve solves A·x = b. x and b may alias. The factorisation owns the solve
// scratch, so repeated calls do not allocate — but two goroutines must not
// Solve through the same factorisation concurrently.
//
//mpde:hotpath
func (f *SparseLU) Solve(b, x []float64) {
	f.solveWith(f.lx, f.ux, b, x)
}

// solveWith runs the triangular solves against the given value arrays
// (the factorisation's own, or a batch slot sharing its layout).
//
//mpde:hotpath
func (f *SparseLU) solveWith(lx, ux, b, x []float64) {
	n := f.n
	if len(b) != n || len(x) != n {
		panic(ErrShape)
	}
	if f.swork == nil { //mpde:alloc-ok lazy scratch init, amortised over solves
		f.swork = make([]float64, n)
	}
	y := f.swork
	for i := 0; i < n; i++ {
		y[f.pinv[i]] = b[i]
	}
	// Forward: L·z = P·b (unit diagonal first in each column).
	for j := 0; j < n; j++ {
		yj := y[j]
		if yj == 0 {
			continue
		}
		for p := f.lp[j] + 1; p < f.lp[j+1]; p++ {
			y[f.li[p]] -= lx[p] * yj
		}
	}
	// Backward: U·x = z (diagonal last in each column).
	for j := n - 1; j >= 0; j-- {
		d := ux[f.up[j+1]-1]
		y[j] /= d
		yj := y[j]
		if yj == 0 {
			continue
		}
		for p := f.up[j]; p < f.up[j+1]-1; p++ {
			y[f.ui[p]] -= ux[p] * yj
		}
	}
	copy(x, y)
}

// CloneSymbolic returns a factorisation sharing this one's symbolic analysis
// (pattern, pivot order, CSC gather map — all read-only after factorisation)
// with fresh private value arrays and scratch. The clone must be Refactored
// against a same-pattern matrix before its factors are meaningful; until then
// it carries this factorisation's values. Clones are independent: each owns
// its scratch, so different goroutines may use different clones concurrently.
func (f *SparseLU) CloneSymbolic() *SparseLU {
	c := *f
	c.lx = append([]float64(nil), f.lx...)
	c.ux = append([]float64(nil), f.ux...)
	c.work, c.swork = nil, nil
	return &c
}

// NNZ returns the total stored entries in L and U.
func (f *SparseLU) NNZ() int { return len(f.lx) + len(f.ux) }
