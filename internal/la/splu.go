package la

import (
	"fmt"
	"math"
)

// SparseLU is a left-looking sparse LU factorisation with partial pivoting
// (Gilbert–Peierls, in the style of CSparse's cs_lu): P·A = L·U, with L unit
// lower triangular. Both factors are stored column-wise.
type SparseLU struct {
	n          int
	lp, li     []int
	lx         []float64
	up, ui     []int
	ux         []float64
	pinv       []int // original row i is pivotal for column pinv[i]
	FillFactor float64
}

// SparseLUFactor computes P·A = L·U with threshold partial pivoting. tol in
// (0,1] controls diagonal preference: the diagonal entry is kept as pivot when
// |a_kk| ≥ tol·max|column|; tol=1 is classic partial pivoting, tol≈0.001 keeps
// fill low on diagonally dominant MNA systems. A must be square.
func SparseLUFactor(a *CSR, tol float64) (*SparseLU, error) {
	if a.Rows != a.Cols {
		return nil, ErrShape
	}
	if tol <= 0 || tol > 1 {
		tol = 1
	}
	n := a.Rows
	// Column access: row j of Aᵀ is column j of A.
	at := a.Transpose()

	f := &SparseLU{n: n}
	f.lp = make([]int, n+1)
	f.up = make([]int, n+1)
	f.pinv = make([]int, n)
	for i := range f.pinv {
		f.pinv[i] = -1
	}
	x := make([]float64, n)
	xi := make([]int, n)     // topological pattern of the sparse solve
	stack := make([]int, n)  // DFS stack of nodes
	pstack := make([]int, n) // DFS stack of child positions
	mark := make([]int, n)   // visitation stamps
	stamp := 0

	for k := 0; k < n; k++ {
		// --- symbolic: pattern of x = L \ A(:,k) via DFS over L's columns ---
		stamp++
		top := n
		for p := at.RowPtr[k]; p < at.RowPtr[k+1]; p++ {
			root := at.ColIdx[p]
			if mark[root] == stamp {
				continue
			}
			// Iterative DFS with explicit child-position stack.
			head := 0
			stack[0] = root
			for head >= 0 {
				j := stack[head]
				if mark[j] != stamp {
					mark[j] = stamp
					if jn := f.pinv[j]; jn >= 0 {
						pstack[head] = f.lp[jn] + 1 // skip unit diagonal entry
					} else {
						pstack[head] = 0 // no children
					}
				}
				done := true
				if jn := f.pinv[j]; jn >= 0 {
					for pp := pstack[head]; pp < f.lp[jn+1]; pp++ {
						child := f.li[pp]
						if mark[child] != stamp {
							pstack[head] = pp + 1
							head++
							stack[head] = child
							done = false
							break
						}
					}
				}
				if done {
					head--
					top--
					xi[top] = j
				}
			}
		}
		// --- numeric: scatter A(:,k) and run the sparse triangular solve ---
		for p := top; p < n; p++ {
			x[xi[p]] = 0
		}
		for p := at.RowPtr[k]; p < at.RowPtr[k+1]; p++ {
			x[at.ColIdx[p]] = at.Val[p]
		}
		for p := top; p < n; p++ {
			j := xi[p]
			jn := f.pinv[j]
			if jn < 0 {
				continue
			}
			xj := x[j] // L has unit diagonal; no division
			for pp := f.lp[jn] + 1; pp < f.lp[jn+1]; pp++ {
				x[f.li[pp]] -= f.lx[pp] * xj
			}
		}
		// --- pivot selection among not-yet-pivotal rows ---
		ipiv, amax := -1, 0.0
		for p := top; p < n; p++ {
			j := xi[p]
			if f.pinv[j] < 0 {
				if a := math.Abs(x[j]); a > amax {
					ipiv, amax = j, a
				}
			}
		}
		if ipiv < 0 || amax == 0 {
			return nil, fmt.Errorf("%w (column %d)", ErrSingular, k)
		}
		// Prefer the diagonal when it is acceptably large (reduces fill).
		if f.pinv[k] < 0 && math.Abs(x[k]) >= tol*amax {
			ipiv = k
		}
		pivot := x[ipiv]
		f.pinv[ipiv] = k
		// --- append column k of U (pivotal rows) and L (non-pivotal rows) ---
		for p := top; p < n; p++ {
			j := xi[p]
			if jn := f.pinv[j]; jn >= 0 && j != ipiv {
				f.ui = append(f.ui, jn)
				f.ux = append(f.ux, x[j])
			}
		}
		f.ui = append(f.ui, k) // diagonal of U, stored last in its column
		f.ux = append(f.ux, pivot)
		f.up[k+1] = len(f.ux)

		f.li = append(f.li, ipiv) // unit diagonal of L, stored first
		f.lx = append(f.lx, 1)
		for p := top; p < n; p++ {
			j := xi[p]
			if f.pinv[j] < 0 {
				f.li = append(f.li, j)
				f.lx = append(f.lx, x[j]/pivot)
			}
		}
		f.lp[k+1] = len(f.lx)
	}
	// Remap L's row indices from original numbering to pivotal numbering.
	for p := range f.li {
		f.li[p] = f.pinv[f.li[p]]
	}
	if nnz := a.NNZ(); nnz > 0 {
		f.FillFactor = float64(len(f.lx)+len(f.ux)) / float64(nnz)
	}
	return f, nil
}

// Solve solves A·x = b. x and b may alias.
func (f *SparseLU) Solve(b, x []float64) {
	n := f.n
	if len(b) != n || len(x) != n {
		panic(ErrShape)
	}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		y[f.pinv[i]] = b[i]
	}
	// Forward: L·z = P·b (unit diagonal first in each column).
	for j := 0; j < n; j++ {
		yj := y[j]
		if yj == 0 {
			continue
		}
		for p := f.lp[j] + 1; p < f.lp[j+1]; p++ {
			y[f.li[p]] -= f.lx[p] * yj
		}
	}
	// Backward: U·x = z (diagonal last in each column).
	for j := n - 1; j >= 0; j-- {
		d := f.ux[f.up[j+1]-1]
		y[j] /= d
		yj := y[j]
		if yj == 0 {
			continue
		}
		for p := f.up[j]; p < f.up[j+1]-1; p++ {
			y[f.ui[p]] -= f.ux[p] * yj
		}
	}
	copy(x, y)
}

// NNZ returns the total stored entries in L and U.
func (f *SparseLU) NNZ() int { return len(f.lx) + len(f.ux) }
