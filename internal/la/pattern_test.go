package la

import (
	"math"
	"math/rand"
	"testing"
)

// randomTriplet stamps nnz random entries (duplicates likely) into an n×n
// triplet plus a guaranteed nonsingular diagonal.
func randomTriplet(rng *rand.Rand, n, nnz int) *Triplet {
	tr := NewTriplet(n, n)
	for i := 0; i < n; i++ {
		tr.Append(i, i, 4+rng.Float64())
	}
	for k := 0; k < nnz; k++ {
		tr.Append(rng.Intn(n), rng.Intn(n), rng.NormFloat64())
	}
	return tr
}

func csrEqual(t *testing.T, a, b *CSR, tol float64) {
	t.Helper()
	if a.Rows != b.Rows || a.Cols != b.Cols || a.NNZ() != b.NNZ() {
		t.Fatalf("shape/nnz mismatch: %dx%d/%d vs %dx%d/%d",
			a.Rows, a.Cols, a.NNZ(), b.Rows, b.Cols, b.NNZ())
	}
	for i := 0; i < a.Rows; i++ {
		if a.RowPtr[i+1] != b.RowPtr[i+1] {
			t.Fatalf("row %d: rowptr %d vs %d", i, a.RowPtr[i+1], b.RowPtr[i+1])
		}
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if a.ColIdx[k] != b.ColIdx[k] {
				t.Fatalf("row %d slot %d: col %d vs %d", i, k, a.ColIdx[k], b.ColIdx[k])
			}
			if math.Abs(a.Val[k]-b.Val[k]) > tol {
				t.Fatalf("row %d col %d: val %v vs %v", i, a.ColIdx[k], a.Val[k], b.Val[k])
			}
		}
	}
}

// TestCompressIntoMatchesCompress pins the reusable-storage compression to
// the allocating one, including duplicate merging.
func TestCompressIntoMatchesCompress(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := randomTriplet(rng, 30, 200)
	want := tr.Compress()
	var dst CSR
	got := tr.CompressInto(&dst)
	if got != &dst {
		t.Fatal("CompressInto must return its destination")
	}
	csrEqual(t, got, want, 0)
	// Restamp different values into the same triplet shape and recompress
	// into the same storage: no stale state may leak.
	tr2 := randomTriplet(rng, 30, 200)
	want2 := tr2.Compress()
	got2 := tr2.CompressInto(&dst)
	csrEqual(t, got2, want2, 0)
}

// TestPatternBuilderAndRowStamper checks that symbolic-pattern stamping
// reproduces a triplet-compressed matrix exactly, and that out-of-pattern
// stamps are rejected without modifying the matrix.
func TestPatternBuilderAndRowStamper(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 25
	tr := randomTriplet(rng, n, 150)
	want := tr.Compress()

	pb := NewPatternBuilder(n, n)
	for k := range tr.V {
		pb.Add(tr.I[k], tr.J[k])
	}
	m := pb.Build()
	if m.NNZ() != want.NNZ() {
		t.Fatalf("pattern nnz %d, want %d", m.NNZ(), want.NNZ())
	}
	st := NewRowStamper(m)
	for pass := 0; pass < 3; pass++ { // reuse across "iterations"
		st.ZeroRows(0, n)
		for i := 0; i < n; i++ {
			st.SetRow(i)
			for k := range tr.V {
				if tr.I[k] != i {
					continue
				}
				if !st.Add(tr.J[k], tr.V[k]) {
					t.Fatalf("in-pattern stamp (%d,%d) rejected", i, tr.J[k])
				}
			}
		}
		csrEqual(t, m, want, 1e-13)
	}
	// A column outside the row's pattern must be refused and leave values
	// untouched.
	before := append([]float64(nil), m.Val...)
	st.SetRow(0)
	missing := -1
	for j := 0; j < n; j++ {
		if m.At(0, j) == 0 && !inPattern(m, 0, j) {
			missing = j
			break
		}
	}
	if missing >= 0 {
		if st.Add(missing, 1) {
			t.Fatalf("out-of-pattern stamp (0,%d) accepted", missing)
		}
		for k := range before {
			if m.Val[k] != before[k] {
				t.Fatal("rejected stamp modified the matrix")
			}
		}
	}
}

func inPattern(m *CSR, i, j int) bool {
	for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
		if m.ColIdx[k] == j {
			return true
		}
	}
	return false
}

// TestPatternBuilderAddBlock places a local pattern at a block offset.
func TestPatternBuilderAddBlock(t *testing.T) {
	local := NewTriplet(2, 2)
	local.Append(0, 0, 1)
	local.Append(1, 0, 2)
	lm := local.Compress()
	pb := NewPatternBuilder(6, 6)
	pb.AddBlock(lm, 2, 4)
	m := pb.Build()
	if m.NNZ() != 2 || !inPattern(m, 2, 4) || !inPattern(m, 3, 4) {
		t.Fatalf("block pattern wrong: nnz=%d", m.NNZ())
	}
}

// TestSparseLURefactor: a numeric-only refactorisation on a new matrix with
// the same pattern must solve as accurately as a fresh factorisation.
func TestSparseLURefactor(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 40
	tr := randomTriplet(rng, n, 300)
	a := tr.Compress()
	f, err := SparseLUFactor(a, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	check := func(m *CSR, f *SparseLU) {
		t.Helper()
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		m.MulVec(xTrue, b)
		x := make([]float64, n)
		f.Solve(b, x)
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-8 {
				t.Fatalf("solve error at %d: %v vs %v", i, x[i], xTrue[i])
			}
		}
	}
	check(a, f)
	// Restamp the same pattern with new values (in place, the hot path).
	for k := range a.Val {
		a.Val[k] *= 1 + 0.3*rng.Float64()
	}
	for i := 0; i < n; i++ { // keep diagonal dominance-ish
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if a.ColIdx[k] == i {
				a.Val[k] += 2
			}
		}
	}
	if !f.SamePattern(a) {
		t.Fatal("in-place restamp should preserve pattern identity")
	}
	if err := f.Refactor(a); err != nil {
		t.Fatal(err)
	}
	check(a, f)
	// A different pattern must be refused.
	tr2 := randomTriplet(rng, n, 280)
	b2 := tr2.Compress()
	if f.SamePattern(b2) {
		t.Skip("random patterns collided; extremely unlikely")
	}
	if err := f.Refactor(b2); err == nil {
		t.Fatal("refactor accepted a mismatched pattern")
	}
}

// TestSparseLURefactorSingular: a pattern-preserving value change that kills
// a pivot must fail loudly so callers fall back to a full factorisation.
func TestSparseLURefactorSingular(t *testing.T) {
	tr := NewTriplet(2, 2)
	tr.Append(0, 0, 2)
	tr.Append(0, 1, 1)
	tr.Append(1, 0, 1)
	tr.Append(1, 1, 2)
	a := tr.Compress()
	f, err := SparseLUFactor(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Make the matrix exactly singular without touching the pattern.
	a.Val[0], a.Val[1] = 1, 1
	a.Val[2], a.Val[3] = 1, 1
	if err := f.Refactor(a); err == nil {
		t.Fatal("refactor of a singular matrix must fail")
	}
}

// TestSparseLURefactorMatchesFreshFactor compares LU solves after many
// refactor cycles against fresh factorisations on the same values.
func TestSparseLURefactorMatchesFreshFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	n := 30
	tr := randomTriplet(rng, n, 220)
	a := tr.Compress()
	f, err := SparseLUFactor(a, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	for cycle := 0; cycle < 5; cycle++ {
		for k := range a.Val {
			a.Val[k] += 0.05 * rng.NormFloat64()
		}
		if err := f.Refactor(a); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		fresh, err := SparseLUFactor(a, 0.001)
		if err != nil {
			t.Fatalf("cycle %d fresh: %v", cycle, err)
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		f.Solve(b, x1)
		fresh.Solve(b, x2)
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-8*(1+math.Abs(x2[i])) {
				t.Fatalf("cycle %d: refactored solve differs at %d: %v vs %v", cycle, i, x1[i], x2[i])
			}
		}
	}
}
