package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Max(math.Abs(a), math.Abs(b)))
}

func randomDense(rng *rand.Rand, n int) *Dense {
	m := NewDense(n, n)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	// Make it comfortably nonsingular.
	for i := 0; i < n; i++ {
		m.Add(i, i, float64(n))
	}
	return m
}

func TestDenseAtSetAdd(t *testing.T) {
	m := NewDense(3, 4)
	m.Set(1, 2, 5)
	if got := m.At(1, 2); got != 5 {
		t.Fatalf("At(1,2) = %v, want 5", got)
	}
	m.Add(1, 2, 2.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("after Add, At(1,2) = %v, want 7.5", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Fatalf("untouched entry = %v, want 0", got)
	}
}

func TestDenseMulVec(t *testing.T) {
	m := DenseFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	y := make([]float64, 3)
	m.MulVec([]float64{1, -1}, y)
	want := []float64{-1, -1, -1}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("MulVec[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestDenseMul(t *testing.T) {
	a := DenseFromRows([][]float64{{1, 2}, {3, 4}})
	b := DenseFromRows([][]float64{{0, 1}, {1, 0}})
	c := a.Mul(b)
	want := DenseFromRows([][]float64{{2, 1}, {4, 3}})
	for i := range want.Data {
		if c.Data[i] != want.Data[i] {
			t.Fatalf("Mul mismatch at %d: got %v want %v", i, c.Data[i], want.Data[i])
		}
	}
}

func TestDenseTranspose(t *testing.T) {
	a := DenseFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("transpose shape = %dx%d", at.Rows, at.Cols)
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestDenseLUSolveKnown(t *testing.T) {
	a := DenseFromRows([][]float64{
		{2, 1, 1},
		{4, -6, 0},
		{-2, 7, 2},
	})
	b := []float64{5, -2, 9}
	x, err := SolveDense(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 2}
	for i := range want {
		if !almostEqual(x[i], want[i], 1e-12) {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestDenseLUSingular(t *testing.T) {
	a := DenseFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := DenseLU(a); err == nil {
		t.Fatal("expected ErrSingular for rank-deficient matrix")
	}
}

func TestDenseLUNonSquare(t *testing.T) {
	if _, err := DenseLU(NewDense(2, 3)); err == nil {
		t.Fatal("expected shape error for non-square LU")
	}
}

func TestDenseLUResidualProperty(t *testing.T) {
	// Property: for random diagonally boosted A and random b, ‖A·x−b‖ is tiny.
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		a := randomDense(r, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := SolveDense(a, b)
		if err != nil {
			return false
		}
		res := make([]float64, n)
		a.MulVec(x, res)
		Axpy(-1, b, res)
		return Norm2(res) < 1e-9*(1+Norm2(b))
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDenseLUDeterminant(t *testing.T) {
	a := DenseFromRows([][]float64{{3, 0}, {0, 2}})
	f, err := DenseLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(f.Det(), 6, 1e-14) {
		t.Fatalf("Det = %v, want 6", f.Det())
	}
	// Permuted case flips pivot rows internally but determinant is invariant.
	a2 := DenseFromRows([][]float64{{0, 2}, {3, 0}})
	f2, err := DenseLU(a2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(f2.Det(), -6, 1e-14) {
		t.Fatalf("Det = %v, want -6", f2.Det())
	}
}

func TestSolveMatrixIdentityGivesInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomDense(rng, 6)
	f, err := DenseLU(a)
	if err != nil {
		t.Fatal(err)
	}
	inv := f.SolveMatrix(Eye(6))
	prod := a.Mul(inv)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEqual(prod.At(i, j), want, 1e-10) {
				t.Fatalf("A·A⁻¹(%d,%d) = %v", i, j, prod.At(i, j))
			}
		}
	}
}

func TestEyeMaxAbsScale(t *testing.T) {
	m := Eye(4)
	m.Scale(-3)
	if m.MaxAbs() != 3 {
		t.Fatalf("MaxAbs = %v, want 3", m.MaxAbs())
	}
	m.AddScaled(1, Eye(4))
	if got := m.At(0, 0); got != -2 {
		t.Fatalf("AddScaled diag = %v, want -2", got)
	}
}

func TestCondEstimateIdentity(t *testing.T) {
	if c := CondEstimate(Eye(5)); c < 1 || c > 10 {
		t.Fatalf("CondEstimate(I) = %v, want O(1)", c)
	}
}

func TestVecHelpers(t *testing.T) {
	x := []float64{3, 4}
	if Norm2(x) != 5 {
		t.Fatalf("Norm2 = %v", Norm2(x))
	}
	if NormInf(x) != 4 {
		t.Fatalf("NormInf = %v", NormInf(x))
	}
	if Dot(x, []float64{1, 1}) != 7 {
		t.Fatalf("Dot = %v", Dot(x, []float64{1, 1}))
	}
	y := []float64{1, 1}
	Axpy(2, x, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("Axpy = %v", y)
	}
	z := make([]float64, 2)
	Sub(x, []float64{1, 1}, z)
	if z[0] != 2 || z[1] != 3 {
		t.Fatalf("Sub = %v", z)
	}
	Fill(z, -1)
	if z[0] != -1 || z[1] != -1 {
		t.Fatalf("Fill = %v", z)
	}
}

func TestWeightedMaxNorm(t *testing.T) {
	dx := []float64{1e-9, 2e-6}
	ref := []float64{1, 1}
	// abstol 1e-12, reltol 1e-6: second component ratio = 2e-6/(1e-12+1e-6) ≈ 2.
	v := WeightedMaxNorm(dx, ref, 1e-12, 1e-6)
	if v < 1.9 || v > 2.1 {
		t.Fatalf("WeightedMaxNorm = %v, want ≈2", v)
	}
	if WeightedMaxNorm([]float64{0, 0}, ref, 1e-12, 1e-6) != 0 {
		t.Fatal("zero vector should have zero weighted norm")
	}
}

func TestNorm2OverflowSafe(t *testing.T) {
	x := []float64{1e200, 1e200}
	got := Norm2(x)
	want := 1e200 * math.Sqrt2
	if math.IsInf(got, 0) || !almostEqual(got, want, 1e-12) {
		t.Fatalf("Norm2 overflow-unsafe: got %v want %v", got, want)
	}
}
