package la

import (
	"fmt"
	"sync"
)

// BatchLU factors one representative matrix and then numeric-only-refactors
// any number of same-pattern value arrays against that shared symbolic
// analysis. The per-matrix factors live in two contiguous arrays (slot k's
// L values at lx[k·nl:(k+1)·nl], likewise for U), so a batch of N MPDE
// Jacobians costs one symbolic analysis plus N numeric sweeps — the
// block-structure payoff the sweep engine and the matrix-free preconditioner
// both lean on.
//
// When the frozen pivot order goes unstable for a particular matrix
// (vanishing pivot, growth past the stability bound), that slot silently
// falls back to a fresh fully-pivoted factorisation; Solve routes through
// whichever factor the slot ended up with. Fallbacks is the count of such
// slots, Refactored the count that reused the shared analysis.
//
// A BatchLU is not safe for concurrent use: Add and Solve share the
// symbolic factorisation's scratch.
type BatchLU struct {
	sym    *SparseLU
	nl, nu int // per-slot L and U value lengths

	lx, ux []float64   // contiguous batch value storage
	fresh  []*SparseLU // per-slot fallback factorisations (nil = shared path)
	len    int

	Refactored int // slots solved via the shared symbolic analysis
	Fallbacks  int // slots that needed a fresh pivoted factorisation
}

// NewBatchLU factors the representative matrix rep (threshold pivot tol as in
// SparseLUFactor) and reserves contiguous storage for capacity slots.
// capacity is a pre-allocation hint only — Add grows past it.
func NewBatchLU(rep *CSR, tol float64, capacity int) (*BatchLU, error) {
	sym, err := SparseLUFactor(rep, tol)
	if err != nil {
		return nil, err
	}
	if capacity < 0 {
		capacity = 0
	}
	b := &BatchLU{sym: sym, nl: len(sym.lx), nu: len(sym.ux)}
	b.lx = make([]float64, 0, capacity*b.nl)
	b.ux = make([]float64, 0, capacity*b.nu)
	return b, nil
}

// N returns the matrix dimension.
func (b *BatchLU) N() int { return b.sym.n }

// Len returns the number of matrices added to the batch.
func (b *BatchLU) Len() int { return b.len }

// FillFactor reports the shared symbolic factorisation's LU fill.
func (b *BatchLU) FillFactor() float64 { return b.sym.FillFactor }

// Add factors a — which must share the representative's sparsity pattern —
// into the next slot and returns its index. The shared-analysis refactor is
// attempted first; on a stability bailout the slot gets a private fresh
// factorisation instead. The error is non-nil only when a is singular beyond
// recovery (fresh factorisation also failed) or its pattern differs; the
// slot is not consumed in that case.
func (b *BatchLU) Add(a *CSR) (int, error) {
	if !b.sym.SamePattern(a) {
		return 0, fmt.Errorf("la: batch add pattern mismatch (want the representative %d×%d pattern)", b.sym.n, b.sym.n)
	}
	k := b.len
	lo, uo := k*b.nl, k*b.nu
	b.lx = append(b.lx, b.sym.lx...) // carries L's unit diagonal 1s
	b.ux = append(b.ux, b.sym.ux...)
	if err := b.sym.refactorInto(a, b.lx[lo:lo+b.nl], b.ux[uo:uo+b.nu]); err != nil {
		f, ferr := SparseLUFactor(a, 1)
		if ferr != nil {
			b.lx, b.ux = b.lx[:lo], b.ux[:uo]
			return 0, ferr
		}
		for len(b.fresh) <= k {
			b.fresh = append(b.fresh, nil)
		}
		b.fresh[k] = f
		b.Fallbacks++
	} else {
		b.Refactored++
	}
	b.len++
	return k, nil
}

// Solve solves slot k's system A_k·x = b. x and rhs may alias.
func (b *BatchLU) Solve(k int, rhs, x []float64) {
	if k < 0 || k >= b.len {
		panic(ErrShape)
	}
	if k < len(b.fresh) && b.fresh[k] != nil {
		b.fresh[k].Solve(rhs, x)
		return
	}
	lo, uo := k*b.nl, k*b.nu
	b.sym.solveWith(b.lx[lo:lo+b.nl], b.ux[uo:uo+b.nu], rhs, x)
}

// Reset empties the batch while keeping the symbolic analysis and the
// contiguous storage, so the next round of same-pattern matrices reuses
// both. The Refactored/Fallbacks counters keep accumulating across rounds.
func (b *BatchLU) Reset() {
	b.lx, b.ux = b.lx[:0], b.ux[:0]
	for i := range b.fresh {
		b.fresh[i] = nil
	}
	b.len = 0
}

// LUShare lets concurrent solves of same-pattern systems share one symbolic
// analysis: the first solver to complete a full pivoted factorisation
// publishes an immutable snapshot, and later solvers clone it and refactor
// numerics only. It is safe for concurrent use.
type LUShare struct {
	mu sync.Mutex
	f  *SparseLU
}

// Publish offers f's symbolic analysis to the group. Only the first offer
// is kept; the snapshot is cloned under the lock while the publisher still
// owns f, so the publisher may keep refactoring f afterwards.
func (s *LUShare) Publish(f *SparseLU) {
	if s == nil || f == nil {
		return
	}
	s.mu.Lock()
	if s.f == nil {
		s.f = f.CloneSymbolic()
	}
	s.mu.Unlock()
}

// Acquire returns a private clone of the published factorisation when one
// exists and matches a's sparsity pattern, else nil. The caller owns the
// clone and must Refactor it against a before solving.
func (s *LUShare) Acquire(a *CSR) *SparseLU {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	f := s.f
	s.mu.Unlock()
	if f == nil || !f.SamePattern(a) {
		return nil
	}
	return f.CloneSymbolic()
}
