package la

import (
	"errors"
	"math"
	"time"
)

// Operator is anything that can apply a square linear map y = A·x. It lets
// GMRES run matrix-free (e.g. monodromy-matrix application in shooting).
type Operator interface {
	Apply(x, y []float64)
	Size() int
}

// Preconditioner approximately solves M·z = r in place of z.
type Preconditioner interface {
	Precondition(r, z []float64)
}

// IdentityPreconditioner is the no-op preconditioner.
type IdentityPreconditioner struct{}

// Precondition copies r into z.
func (IdentityPreconditioner) Precondition(r, z []float64) { copy(z, r) }

// csrOperator adapts a CSR matrix to the Operator interface.
type csrOperator struct{ m *CSR }

func (o csrOperator) Apply(x, y []float64) { o.m.MulVec(x, y) }
func (o csrOperator) Size() int            { return o.m.Rows }

// AsOperator wraps a CSR matrix as an Operator.
func AsOperator(m *CSR) Operator { return csrOperator{m} }

// GMRESOptions configures the restarted GMRES solver.
type GMRESOptions struct {
	Restart int     // Krylov subspace dimension before restart (default 30)
	MaxIter int     // total iteration cap (default 10·n)
	Tol     float64 // relative residual target ‖r‖/‖b‖ (default 1e-10)
	M       Preconditioner
}

// GMRESResult reports convergence details.
type GMRESResult struct {
	Iterations int
	Residual   float64 // final relative residual
	Converged  bool
	// Wall is the solve's wall-clock time (observability only — excluded
	// from every byte-stable export).
	Wall time.Duration
}

// ErrNoConvergence is returned when an iterative solver hits its iteration cap.
var ErrNoConvergence = errors.New("la: iterative solver did not converge")

// GMRESSolver is a restarted GMRES(m) solver that owns its Krylov workspace
// — the m+1 basis vectors, the Hessenberg, the Givens rotation arrays — so
// repeated Solve calls (one per Newton iteration on the iterative path)
// reuse storage instead of reallocating it. The zero value is ready to use;
// the workspace is sized lazily on first Solve and grows when a later call
// needs a larger n or restart length. Not safe for concurrent use.
type GMRESSolver struct {
	n, m    int
	v       [][]float64 // Krylov basis, m+1 vectors of length n
	h       *Dense      // Hessenberg, (m+1)×m
	cs, sn  []float64
	g, y    []float64
	r, w, z []float64
}

// ensure sizes the workspace for dimension n and restart length m.
func (s *GMRESSolver) ensure(n, m int) {
	if s.n >= n && s.m >= m {
		return
	}
	if n < s.n {
		n = s.n
	}
	if m < s.m {
		m = s.m
	}
	s.n, s.m = n, m
	s.v = make([][]float64, m+1)
	for i := range s.v {
		s.v[i] = make([]float64, n)
	}
	s.h = NewDense(m+1, m)
	s.cs = make([]float64, m)
	s.sn = make([]float64, m)
	s.g = make([]float64, m+1)
	s.y = make([]float64, m)
	s.r = make([]float64, n)
	s.w = make([]float64, n)
	s.z = make([]float64, n)
}

// GMRES solves A·x = b by restarted, right-preconditioned GMRES(m). x holds
// the initial guess on entry and the solution on exit. It allocates a fresh
// workspace per call; hot paths should hold a GMRESSolver instead.
func GMRES(a Operator, b, x []float64, opt GMRESOptions) (GMRESResult, error) {
	return new(GMRESSolver).Solve(a, b, x, opt)
}

// Solve runs restarted right-preconditioned GMRES(m) against the solver's
// reusable workspace. x holds the initial guess on entry and the solution on
// exit.
//
//mpde:hotpath
func (s *GMRESSolver) Solve(a Operator, b, x []float64, opt GMRESOptions) (res GMRESResult, err error) {
	t0 := time.Now()
	defer func() { res.Wall = time.Since(t0) }() //mpde:alloc-ok one timing closure per solve
	n := a.Size()
	if len(b) != n || len(x) != n {
		return GMRESResult{}, ErrShape
	}
	if opt.Restart <= 0 {
		opt.Restart = 30
	}
	if opt.Restart > n {
		opt.Restart = n
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 10 * n
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-10
	}
	if opt.M == nil {
		opt.M = IdentityPreconditioner{} // zero-field box: no allocation
	}
	m := opt.Restart
	normB := Norm2(b)
	if normB == 0 {
		Fill(x, 0)
		return GMRESResult{Converged: true}, nil
	}

	s.ensure(n, m)
	v, h, cs, sn := s.v, s.h, s.cs, s.sn
	g := s.g
	r, w, z := s.r[:n], s.w[:n], s.z[:n]
	for i := range v {
		v[i] = v[i][:n]
	}

	totalIters := 0
	for totalIters < opt.MaxIter {
		// r = b − A·x
		a.Apply(x, r)
		for i := range r {
			r[i] = b[i] - r[i]
		}
		beta := Norm2(r)
		rel := beta / normB
		if rel <= opt.Tol {
			return GMRESResult{Iterations: totalIters, Residual: rel, Converged: true}, nil
		}
		copy(v[0], r)
		Scal(1/beta, v[0])
		Fill(g, 0)
		g[0] = beta

		k := 0
		for ; k < m && totalIters < opt.MaxIter; k++ {
			totalIters++
			// w = A·M⁻¹·v_k (right preconditioning)
			opt.M.Precondition(v[k], z)
			a.Apply(z, w)
			// Modified Gram–Schmidt.
			for i := 0; i <= k; i++ {
				hik := Dot(w, v[i])
				h.Set(i, k, hik)
				Axpy(-hik, v[i], w)
			}
			hk1 := Norm2(w)
			h.Set(k+1, k, hk1)
			if hk1 > 0 {
				copy(v[k+1], w)
				Scal(1/hk1, v[k+1])
			}
			// Apply accumulated Givens rotations to the new column.
			for i := 0; i < k; i++ {
				t := cs[i]*h.At(i, k) + sn[i]*h.At(i+1, k)
				h.Set(i+1, k, -sn[i]*h.At(i, k)+cs[i]*h.At(i+1, k))
				h.Set(i, k, t)
			}
			// New rotation to annihilate h(k+1,k).
			den := math.Hypot(h.At(k, k), h.At(k+1, k))
			if den == 0 {
				cs[k], sn[k] = 1, 0
			} else {
				cs[k], sn[k] = h.At(k, k)/den, h.At(k+1, k)/den
			}
			h.Set(k, k, cs[k]*h.At(k, k)+sn[k]*h.At(k+1, k))
			h.Set(k+1, k, 0)
			g[k+1] = -sn[k] * g[k]
			g[k] = cs[k] * g[k]
			if math.Abs(g[k+1])/normB <= opt.Tol {
				k++
				break
			}
			if hk1 == 0 { // lucky breakdown
				k++
				break
			}
		}
		// Solve the small triangular system H·y = g.
		y := s.y[:k]
		for i := k - 1; i >= 0; i-- {
			s := g[i]
			for j := i + 1; j < k; j++ {
				s -= h.At(i, j) * y[j]
			}
			y[i] = s / h.At(i, i)
		}
		// x += M⁻¹·(V·y)
		Fill(w, 0)
		for i := 0; i < k; i++ {
			Axpy(y[i], v[i], w)
		}
		opt.M.Precondition(w, z)
		Axpy(1, z, x)

		a.Apply(x, r)
		for i := range r {
			r[i] = b[i] - r[i]
		}
		rel = Norm2(r) / normB
		if rel <= opt.Tol {
			return GMRESResult{Iterations: totalIters, Residual: rel, Converged: true}, nil
		}
	}
	a.Apply(x, r)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	rel := Norm2(r) / normB
	return GMRESResult{Iterations: totalIters, Residual: rel, Converged: false}, ErrNoConvergence
}

// ILU0 is a zero-fill incomplete LU preconditioner built on the sparsity
// pattern of the input matrix.
type ILU0 struct {
	m    *CSR
	diag []int
}

// NewILU0 computes the ILU(0) factorisation in place on a copy of a.
// Rows must have their diagonal entry present.
func NewILU0(a *CSR) (*ILU0, error) {
	m := a.Clone()
	diag := m.DiagIndex()
	for i, d := range diag {
		if d < 0 {
			return nil, errors.New("la: ILU0 requires a structurally nonzero diagonal")
		}
		_ = i
	}
	n := m.Rows
	for i := 0; i < n; i++ {
		for kk := m.RowPtr[i]; kk < m.RowPtr[i+1]; kk++ {
			k := m.ColIdx[kk]
			if k >= i {
				break
			}
			dk := m.Val[diag[k]]
			if dk == 0 {
				return nil, ErrSingular
			}
			lik := m.Val[kk] / dk
			m.Val[kk] = lik
			// Subtract lik · U(k, :) restricted to the pattern of row i.
			pk := diag[k] + 1
			pi := kk + 1
			for pk < m.RowPtr[k+1] && pi < m.RowPtr[i+1] {
				ck, ci := m.ColIdx[pk], m.ColIdx[pi]
				switch {
				case ck == ci:
					m.Val[pi] -= lik * m.Val[pk]
					pk++
					pi++
				case ck < ci:
					pk++ // fill outside pattern: dropped
				default:
					pi++
				}
			}
		}
		if m.Val[diag[i]] == 0 {
			return nil, ErrSingular
		}
	}
	return &ILU0{m: m, diag: diag}, nil
}

// Precondition applies z = (LU)⁻¹ r.
func (p *ILU0) Precondition(r, z []float64) {
	n := p.m.Rows
	if len(r) != n || len(z) != n {
		panic(ErrShape)
	}
	// Forward solve with unit L.
	for i := 0; i < n; i++ {
		s := r[i]
		for k := p.m.RowPtr[i]; k < p.diag[i]; k++ {
			s -= p.m.Val[k] * z[p.m.ColIdx[k]]
		}
		z[i] = s
	}
	// Backward solve with U.
	for i := n - 1; i >= 0; i-- {
		s := z[i]
		for k := p.diag[i] + 1; k < p.m.RowPtr[i+1]; k++ {
			s -= p.m.Val[k] * z[p.m.ColIdx[k]]
		}
		z[i] = s / p.m.Val[p.diag[i]]
	}
}

// SparseLUPreconditioner wraps an exact sparse LU as a (direct) preconditioner,
// useful to compare iterative vs direct solves through the same interface.
type SparseLUPreconditioner struct{ F *SparseLU }

// Precondition solves exactly with the wrapped factorisation.
func (p SparseLUPreconditioner) Precondition(r, z []float64) { p.F.Solve(r, z) }
