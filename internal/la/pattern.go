package la

import "sort"

// PatternBuilder accumulates the structural nonzero pattern of a sparse
// matrix — positions only, no values. Build freezes the pattern into a CSR
// with sorted, duplicate-free columns and zeroed values, ready for repeated
// in-place numeric stamping through a RowStamper. This is the "symbolic
// assembly" half of the split that lets the MPDE Newton loop compute the
// Jacobian's sparsity once per solve (it is fixed by the difference stencil
// and the device topology) and only restamp values each iteration.
type PatternBuilder struct {
	rows, cols int
	i, j       []int32
}

// NewPatternBuilder returns an empty structural builder for an r×c matrix.
func NewPatternBuilder(r, c int) *PatternBuilder {
	return &PatternBuilder{rows: r, cols: c}
}

// Add records a structural entry at (i, j). Duplicates are cheap and merged
// by Build.
func (b *PatternBuilder) Add(i, j int) {
	b.i = append(b.i, int32(i))
	b.j = append(b.j, int32(j))
}

// AddBlock records every entry of m's pattern shifted to (rowBase, colBase).
func (b *PatternBuilder) AddBlock(m *CSR, rowBase, colBase int) {
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			b.Add(rowBase+i, colBase+m.ColIdx[k])
		}
	}
}

// Build compresses the recorded positions into a CSR with sorted,
// duplicate-free columns per row and all values zero.
func (b *PatternBuilder) Build() *CSR {
	rowCount := make([]int, b.rows+1)
	for _, i := range b.i {
		rowCount[i+1]++
	}
	for i := 0; i < b.rows; i++ {
		rowCount[i+1] += rowCount[i]
	}
	colIdx := make([]int, len(b.j))
	next := make([]int, b.rows)
	copy(next, rowCount[:b.rows])
	for k, i := range b.i {
		colIdx[next[i]] = int(b.j[k])
		next[i]++
	}
	m := &CSR{Rows: b.rows, Cols: b.cols, RowPtr: make([]int, b.rows+1)}
	for i := 0; i < b.rows; i++ {
		seg := colIdx[rowCount[i]:rowCount[i+1]]
		sort.Ints(seg)
		prev := -1
		for _, c := range seg {
			if c == prev {
				continue
			}
			m.ColIdx = append(m.ColIdx, c)
			prev = c
		}
		m.RowPtr[i+1] = len(m.ColIdx)
	}
	m.Val = make([]float64, len(m.ColIdx))
	return m
}

// RowStamper adds values into a fixed-pattern CSR row by row in O(1) per
// entry via a column→slot scatter map. One stamper serves one goroutine;
// concurrent stampers over disjoint row ranges of the same matrix are safe
// because they write disjoint slices of Val.
type RowStamper struct {
	m    *CSR
	slot []int32 // column → Val index, valid when mark matches
	mark []int32 // column → generation of the loaded row
	gen  int32
}

// NewRowStamper binds a stamper to m. The pattern (RowPtr/ColIdx) of m must
// not change while the stamper is in use; values may be rewritten freely.
func NewRowStamper(m *CSR) *RowStamper {
	return &RowStamper{
		m:    m,
		slot: make([]int32, m.Cols),
		mark: make([]int32, m.Cols),
	}
}

// ZeroRows clears the stored values of rows [lo, hi).
//
//mpde:hotpath
func (s *RowStamper) ZeroRows(lo, hi int) {
	Fill(s.m.Val[s.m.RowPtr[lo]:s.m.RowPtr[hi]], 0)
}

// SetRow loads row i's scatter map; subsequent Add calls target row i.
//
//mpde:hotpath
func (s *RowStamper) SetRow(i int) {
	s.gen++
	if s.gen < 0 { // generation wrap: rebuild marks from scratch
		Fill32(s.mark, 0)
		s.gen = 1
	}
	m := s.m
	for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
		c := m.ColIdx[k]
		s.slot[c] = int32(k)
		s.mark[c] = s.gen
	}
}

// Add accumulates v at (current row, j). It reports false — leaving the
// matrix unchanged — when (row, j) is not part of the pattern, which signals
// the caller to rebuild its symbolic pattern.
//
//mpde:hotpath
func (s *RowStamper) Add(j int, v float64) bool {
	if s.mark[j] != s.gen {
		return false
	}
	s.m.Val[s.slot[j]] += v
	return true
}

// Fill32 sets every element of x to v.
func Fill32(x []int32, v int32) {
	for i := range x {
		x[i] = v
	}
}
