// Package la provides the dense and sparse linear-algebra kernels used by the
// simulator: dense LU with partial pivoting (real and complex), sparse
// matrices in triplet and compressed-sparse-row form, a left-looking sparse LU
// (Gilbert–Peierls), restarted GMRES, and ILU(0) / block preconditioners.
//
// Everything is written against float64 slices so the hot loops stay free of
// interface dispatch; matrices are small-to-medium (MNA systems and MPDE grid
// Jacobians), so clarity is preferred over blocking/vectorisation tricks.
package la

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorisation encounters an (effectively)
// singular pivot.
var ErrSingular = errors.New("la: matrix is singular to working precision")

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("la: incompatible matrix shapes")

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewDense returns a zeroed r×c matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic("la: negative dimension")
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// DenseFromRows builds a matrix from row slices (which are copied).
func DenseFromRows(rows [][]float64) *Dense {
	r := len(rows)
	if r == 0 {
		return NewDense(0, 0)
	}
	c := len(rows[0])
	m := NewDense(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic("la: ragged rows")
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// At returns the element at (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into the element at (i, j).
func (m *Dense) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Row returns a view of row i (not a copy).
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero resets all entries to 0 without reallocating.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Eye returns the n×n identity.
func Eye(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// MulVec computes y = A·x. y must have length A.Rows, x length A.Cols.
func (m *Dense) MulVec(x, y []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(ErrShape)
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, a := range row {
			s += a * x[j]
		}
		y[i] = s
	}
}

// Mul computes C = A·B, allocating the result.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.Cols != b.Rows {
		panic(ErrShape)
	}
	c := NewDense(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		arow := m.Row(i)
		crow := c.Row(i)
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bkj := range brow {
				crow[j] += aik * bkj
			}
		}
	}
	return c
}

// AddScaled accumulates s·B into the receiver (in place).
func (m *Dense) AddScaled(s float64, b *Dense) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(ErrShape)
	}
	for i, v := range b.Data {
		m.Data[i] += s * v
	}
}

// Scale multiplies all entries by s in place.
func (m *Dense) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Transpose returns a new transposed matrix.
func (m *Dense) Transpose() *Dense {
	t := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// MaxAbs returns the largest absolute entry (∞-norm over elements).
func (m *Dense) MaxAbs() float64 {
	mx := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	s := ""
	for i := 0; i < m.Rows; i++ {
		s += fmt.Sprintf("%v\n", m.Row(i))
	}
	return s
}

// LU is a dense LU factorisation with partial pivoting: P·A = L·U.
type LU struct {
	n    int
	lu   *Dense // L (unit diagonal, strictly lower) and U packed together
	piv  []int  // row permutation: row i of PA is row piv[i] of A
	sign int    // determinant sign of P
}

// DenseLU factors A (which is overwritten in a copy) with partial pivoting.
// Returns ErrSingular if a pivot is exactly zero; near-singular systems are
// allowed through so callers can apply gmin-style regularisation themselves.
func DenseLU(a *Dense) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, ErrShape
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Partial pivoting: find the largest |entry| in column k at or below k.
		p, mx := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > mx {
				p, mx = i, a
			}
		}
		if mx == 0 {
			return nil, fmt.Errorf("%w (pivot column %d)", ErrSingular, k)
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivVal := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivVal
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return &LU{n: n, lu: lu, piv: piv, sign: sign}, nil
}

// Solve solves A·x = b in place into x (x may alias b).
func (f *LU) Solve(b, x []float64) {
	n := f.n
	if len(b) != n || len(x) != n {
		panic(ErrShape)
	}
	// Apply permutation: y = P·b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		y[i] = b[f.piv[i]]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		ri := f.lu.Row(i)
		s := y[i]
		for j := 0; j < i; j++ {
			s -= ri[j] * y[j]
		}
		y[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		ri := f.lu.Row(i)
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= ri[j] * y[j]
		}
		y[i] = s / ri[i]
	}
	copy(x, y)
}

// SolveMatrix solves A·X = B column by column, returning X.
func (f *LU) SolveMatrix(b *Dense) *Dense {
	if b.Rows != f.n {
		panic(ErrShape)
	}
	x := NewDense(b.Rows, b.Cols)
	col := make([]float64, f.n)
	out := make([]float64, f.n)
	for j := 0; j < b.Cols; j++ {
		for i := 0; i < f.n; i++ {
			col[i] = b.At(i, j)
		}
		f.Solve(col, out)
		for i := 0; i < f.n; i++ {
			x.Set(i, j, out[i])
		}
	}
	return x
}

// Det returns the determinant from the factorisation.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveDense is a convenience: factor A and solve A·x = b once.
func SolveDense(a *Dense, b []float64) ([]float64, error) {
	f, err := DenseLU(a)
	if err != nil {
		return nil, err
	}
	x := make([]float64, len(b))
	f.Solve(b, x)
	return x, nil
}

// CondEstimate returns a cheap 1-norm condition estimate |A|₁·|A⁻¹e|∞-ish
// bound used only for diagnostics (not a rigorous condition number).
func CondEstimate(a *Dense) float64 {
	f, err := DenseLU(a)
	if err != nil {
		return math.Inf(1)
	}
	n := a.Rows
	norm1 := 0.0
	for j := 0; j < n; j++ {
		s := 0.0
		for i := 0; i < n; i++ {
			s += math.Abs(a.At(i, j))
		}
		if s > norm1 {
			norm1 = s
		}
	}
	e := make([]float64, n)
	for i := range e {
		e[i] = 1
	}
	x := make([]float64, n)
	f.Solve(e, x)
	return norm1 * NormInf(x)
}
