package la

import (
	"errors"
	"math"
	"math/cmplx"
)

// Eigenvalues computes all eigenvalues of a real square matrix by complex
// Hessenberg reduction followed by shifted QR iteration with deflation. It
// is intended for the small dense matrices that arise as monodromy
// (state-transition) matrices in shooting — Floquet multipliers — where n is
// tens, not thousands.
func Eigenvalues(a *Dense) ([]complex128, error) {
	if a.Rows != a.Cols {
		return nil, ErrShape
	}
	n := a.Rows
	if n == 0 {
		return nil, nil
	}
	// Copy into complex storage.
	h := make([][]complex128, n)
	for i := range h {
		h[i] = make([]complex128, n)
		for j := 0; j < n; j++ {
			h[i][j] = complex(a.At(i, j), 0)
		}
	}
	hessenberg(h)
	return qrEigen(h)
}

// hessenberg reduces h to upper Hessenberg form in place with Householder
// reflectors.
func hessenberg(h [][]complex128) {
	n := len(h)
	for k := 0; k < n-2; k++ {
		// Build the reflector that zeroes h[k+2:][k].
		norm := 0.0
		for i := k + 1; i < n; i++ {
			norm += real(h[i][k])*real(h[i][k]) + imag(h[i][k])*imag(h[i][k])
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			continue
		}
		alpha := h[k+1][k]
		var phase complex128 = 1
		if cmplx.Abs(alpha) != 0 {
			phase = alpha / complex(cmplx.Abs(alpha), 0)
		}
		beta := -phase * complex(norm, 0)
		v := make([]complex128, n)
		v[k+1] = alpha - beta
		for i := k + 2; i < n; i++ {
			v[i] = h[i][k]
		}
		vnorm := 0.0
		for i := k + 1; i < n; i++ {
			vnorm += real(v[i])*real(v[i]) + imag(v[i])*imag(v[i])
		}
		if vnorm == 0 {
			continue
		}
		// Apply P = I − 2vv*/v*v from the left: H ← PH.
		for j := k; j < n; j++ {
			s := complex(0, 0)
			for i := k + 1; i < n; i++ {
				s += cmplx.Conj(v[i]) * h[i][j]
			}
			s *= complex(2/vnorm, 0)
			for i := k + 1; i < n; i++ {
				h[i][j] -= s * v[i]
			}
		}
		// From the right: H ← HP.
		for i := 0; i < n; i++ {
			s := complex(0, 0)
			for j := k + 1; j < n; j++ {
				s += h[i][j] * v[j]
			}
			s *= complex(2/vnorm, 0)
			for j := k + 1; j < n; j++ {
				h[i][j] -= s * cmplx.Conj(v[j])
			}
		}
	}
}

// ErrEigenNoConvergence reports QR iteration failure.
var ErrEigenNoConvergence = errors.New("la: eigenvalue QR iteration did not converge")

// qrEigen runs shifted QR with deflation on an upper Hessenberg matrix.
func qrEigen(h [][]complex128) ([]complex128, error) {
	n := len(h)
	eig := make([]complex128, 0, n)
	m := n // active size
	const maxSweeps = 300
	for m > 0 {
		converged := false
		for sweep := 0; sweep < maxSweeps; sweep++ {
			// Deflation scan from the bottom.
			if m == 1 {
				eig = append(eig, h[0][0])
				m = 0
				converged = true
				break
			}
			off := cmplx.Abs(h[m-1][m-2])
			scale := cmplx.Abs(h[m-2][m-2]) + cmplx.Abs(h[m-1][m-1])
			if scale == 0 {
				scale = 1
			}
			if off <= 1e-14*scale {
				eig = append(eig, h[m-1][m-1])
				m--
				converged = true
				break
			}
			// Wilkinson shift from the trailing 2×2.
			a := h[m-2][m-2]
			b := h[m-2][m-1]
			c := h[m-1][m-2]
			d := h[m-1][m-1]
			tr := a + d
			det := a*d - b*c
			disc := cmplx.Sqrt(tr*tr - 4*det)
			l1 := (tr + disc) / 2
			l2 := (tr - disc) / 2
			mu := l1
			if cmplx.Abs(l2-d) < cmplx.Abs(l1-d) {
				mu = l2
			}
			// QR step via Givens rotations on the shifted matrix.
			type rot struct{ cs, sn complex128 }
			rots := make([]rot, m-1)
			for i := 0; i < m; i++ {
				h[i][i] -= mu
			}
			for k := 0; k < m-1; k++ {
				x, y := h[k][k], h[k+1][k]
				r := math.Hypot(cmplx.Abs(x), cmplx.Abs(y))
				if r == 0 {
					rots[k] = rot{1, 0}
					continue
				}
				cs := x / complex(r, 0)
				sn := y / complex(r, 0)
				rots[k] = rot{cs, sn}
				for j := k; j < m; j++ {
					t1, t2 := h[k][j], h[k+1][j]
					h[k][j] = cmplx.Conj(cs)*t1 + cmplx.Conj(sn)*t2
					h[k+1][j] = -sn*t1 + cs*t2
				}
			}
			for k := 0; k < m-1; k++ {
				cs, sn := rots[k].cs, rots[k].sn
				for i := 0; i <= k+1 && i < m; i++ {
					t1, t2 := h[i][k], h[i][k+1]
					h[i][k] = t1*cs + t2*sn
					h[i][k+1] = -t1*cmplx.Conj(sn) + t2*cmplx.Conj(cs)
				}
			}
			for i := 0; i < m; i++ {
				h[i][i] += mu
			}
		}
		if !converged {
			return eig, ErrEigenNoConvergence
		}
	}
	return eig, nil
}

// SpectralRadius returns max |λ| over the eigenvalues of a.
func SpectralRadius(a *Dense) (float64, error) {
	eig, err := Eigenvalues(a)
	if err != nil {
		return 0, err
	}
	r := 0.0
	for _, l := range eig {
		if m := cmplx.Abs(l); m > r {
			r = m
		}
	}
	return r, nil
}
