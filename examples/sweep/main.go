// The paper's computational-speedup study (S1) as a single batched run:
// instead of looping disparities and methods one at a time (see
// examples/speedup), one SweepSpec fans every (method, disparity) job across
// the worker pool, and the aggregated result carries both the timing curve
// and the cross-method gain agreement.
//
// The MPDE QPSS cost is independent of the disparity f1/fd while shooting
// across one difference period grows linearly with it — the sweep's per-job
// wall times trace the paper's crossover directly.
//
// Run with: go run ./examples/sweep
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"time"

	"repro"
)

func main() {
	f1 := 100e6
	disparities := []float64{20, 50, 100, 200, 500, 1000, 2000}

	var points []repro.SweepPoint
	for _, d := range disparities {
		points = append(points, repro.SweepPoint{Fd: f1 / d, N1: 40, N2: 30})
	}
	spec := repro.SweepSpec{
		Name:    "s1-speedup",
		Methods: []repro.SweepMethod{repro.SweepQPSS, repro.SweepShooting},
		Points:  points,
		Build: func(p repro.SweepPoint) (*repro.SweepTarget, error) {
			mix := repro.NewUnbalancedMixer(repro.UnbalancedMixerConfig{F1: f1, Fd: p.Fd})
			return &repro.SweepTarget{
				Ckt: mix.Ckt, Shear: mix.Shear,
				OutP: mix.Drain, OutM: -1, RFAmp: mix.Cfg.RFAmp,
			}, nil
		},
		Workers: runtime.NumCPU(),
	}

	t0 := time.Now()
	res, err := repro.Sweep(context.Background(), spec)
	if err != nil {
		log.Fatal(err)
	}
	if _, failed, canceled := res.Counts(); failed+canceled > 0 {
		log.Fatalf("sweep had failures: %v", res.Errors())
	}

	// Jobs are method-major in point order: QPSS first, then shooting.
	n := len(disparities)
	qpss, shoot := res.Jobs[:n], res.Jobs[n:]
	fmt.Printf("batched on %d workers, total wall %v\n\n", res.Workers, time.Since(t0).Round(time.Millisecond))
	fmt.Println("disparity | MPDE QPSS | shooting(Td) | speedup | gain qpss/shooting")
	fmt.Println("----------+-----------+--------------+---------+-------------------")
	for i, d := range disparities {
		q, s := qpss[i], shoot[i]
		fmt.Printf("%9.0f | %9s | %12s | %6.1fx | %.4f / %.4f\n",
			d, q.Wall.Round(time.Millisecond), s.Wall.Round(time.Millisecond),
			float64(s.Wall)/float64(q.Wall), q.Gain.Ratio, s.Gain.Ratio)
	}
	fmt.Println()
	fmt.Println("The per-job times reproduce the paper's S1 trend: the sheared-grid")
	fmt.Println("MPDE cost stays flat while brute-force shooting grows linearly with")
	fmt.Println("the disparity, and both methods report the same conversion gain.")
}
