// Computational speedup of the MPDE method over single-time shooting
// (paper Section 3, "Computational speedup").
//
// The closest traditional method is shooting across one period of the
// difference frequency with ≥10 steps per LO period: its cost grows linearly
// with the disparity f1/fd, while the MPDE grid cost is independent of it.
// This example sweeps the disparity on the unbalanced switching mixer,
// times both methods, and reports the crossover — the paper observes
// break-even near disparity ≈ 200 and >100× beyond 10⁴.
//
// Run with: go run ./examples/speedup
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	f1 := 100e6
	fmt.Println("disparity | MPDE QPSS | shooting(Td) | speedup")
	fmt.Println("----------+-----------+--------------+--------")
	for _, disparity := range []float64{20, 50, 100, 200, 500, 1000, 2000} {
		fd := f1 / disparity

		// MPDE: grid cost independent of disparity.
		mixA := repro.NewUnbalancedMixer(repro.UnbalancedMixerConfig{F1: f1, Fd: fd})
		t0 := time.Now()
		_, err := repro.MPDEQuasiPeriodic(mixA.Ckt, repro.MPDEOptions{
			N1: 40, N2: 30, Shear: mixA.Shear})
		if err != nil {
			log.Fatalf("disparity %g: MPDE: %v", disparity, err)
		}
		mpdeTime := time.Since(t0)

		// Shooting across one difference period with 10 steps per LO cycle.
		mixB := repro.NewUnbalancedMixer(repro.UnbalancedMixerConfig{F1: f1, Fd: fd})
		steps := int(10 * disparity)
		t0 = time.Now()
		_, err = repro.ShootingPSS(mixB.Ckt, repro.ShootingOptions{
			Period: 1 / fd, Steps: steps, Tol: 1e-6})
		if err != nil {
			log.Fatalf("disparity %g: shooting: %v", disparity, err)
		}
		shootTime := time.Since(t0)

		fmt.Printf("%9.0f | %9s | %12s | %6.1fx\n",
			disparity, mpdeTime.Round(time.Millisecond),
			shootTime.Round(time.Millisecond),
			float64(shootTime)/float64(mpdeTime))
	}
	fmt.Println()
	fmt.Println("The paper's mixer runs at disparity 30000 (450 MHz / 15 kHz), where")
	fmt.Println("the linear trend above implies the >100x advantage it reports;")
	fmt.Println("brute-force shooting at that disparity needs ≥300000 time steps.")
}
