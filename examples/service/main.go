// Example service drives the HTTP simulation API end to end: it starts the
// server in-process, submits the balanced LO-doubling mixer deck twice
// concurrently (demonstrating singleflight — the metrics show one engine
// run), follows the SSE progress stream, fetches the cached result, and
// drains the server.
//
// Run with:
//
//	go run ./examples/service
package main

import (
	"bytes"
	"context"
	_ "embed"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro"
)

//go:embed balancedmixer.cir
var mixerDeck string

const addr = "127.0.0.1:8437"

func main() {
	ctx, stop := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- repro.Serve(ctx, addr, repro.ServerOptions{
			MaxConcurrent: 2,
			DrainTimeout:  5 * time.Second,
			Logf:          log.Printf,
		})
	}()
	base := "http://" + addr
	waitHealthy(base)

	body, err := json.Marshal(map[string]any{
		"deck":        mixerDeck,
		"probe":       "outp",
		"probe_minus": "outm",
		"rf_amp":      0.05,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Two identical concurrent submissions: singleflight coalesces them
	// onto one engine run and both get the same bytes.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(base+"/v1/simulate", "application/json", bytes.NewReader(body))
			if err != nil {
				log.Fatal(err)
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			fmt.Printf("simulate[%d]: %s (job %s, X-Cache %s)\n",
				i, resp.Status, resp.Header.Get("X-Job-ID"), resp.Header.Get("X-Cache"))
		}(i)
	}
	wg.Wait()

	// Resubmit asynchronously: a pure cache hit, then stream its (already
	// terminal) event log and fetch the result.
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var info struct {
		ID     string `json:"id"`
		Status string `json:"status"`
		Cached bool   `json:"cached"`
	}
	json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	fmt.Printf("async resubmit: job %s status %s cached %v\n", info.ID, info.Status, info.Cached)

	sresp, err := http.Get(base + "/v1/jobs/" + info.ID + "/events?format=ndjson")
	if err != nil {
		log.Fatal(err)
	}
	events, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	fmt.Printf("events:\n%s", events)

	rresp, err := http.Get(base + "/v1/jobs/" + info.ID + "/result")
	if err != nil {
		log.Fatal(err)
	}
	var result struct {
		Name string `json:"name"`
		Jobs []struct {
			Status string `json:"status"`
			Gain   struct {
				DB float64 `json:"db"`
			} `json:"gain"`
			Swing float64 `json:"swing"`
		} `json:"jobs"`
	}
	json.NewDecoder(rresp.Body).Decode(&result)
	rresp.Body.Close()
	for _, j := range result.Jobs {
		fmt.Printf("result %q: status %s, conversion gain %.2f dB, swing %.1f mV\n",
			result.Name, j.Status, j.Gain.DB, 1e3*j.Swing)
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	fmt.Println("metrics (excerpt):")
	for _, line := range strings.Split(string(metrics), "\n") {
		if strings.HasPrefix(line, "mpde_engine_runs_total") ||
			strings.HasPrefix(line, "mpde_jobs_submitted_total") ||
			strings.HasPrefix(line, "mpde_cache_hits_total") ||
			strings.HasPrefix(line, "mpde_singleflight_shared_total") {
			fmt.Println("  " + line)
		}
	}

	stop()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
}

func waitHealthy(base string) {
	for i := 0; i < 100; i++ {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	log.Fatal("server never became healthy")
}
