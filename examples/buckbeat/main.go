// Beat interference in a switching power converter — the paper's conclusion
// notes the method "can be applied generally to other systems featuring
// closely-spaced tones, such as power conversion circuits".
//
// A buck converter switches at f1 = 1 MHz while its input rail carries a
// small aggressor tone from a neighbouring converter at f2 = f1 − 10 kHz.
// The chopper mixes the two and the output ripple beats at fd = 10 kHz.
// Brute-force transient needs hundreds of switching cycles to reveal one
// beat period; the MPDE grid exposes it directly along the slow axis.
//
// Run with: go run ./examples/buckbeat
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	b := repro.NewBuckBeat(repro.BuckBeatConfig{})
	sh := b.Shear
	fmt.Printf("PWM f1 = %.4g Hz, aggressor f2 = %.6g Hz, beat fd = %.4g Hz (disparity %.0f)\n\n",
		sh.F1, sh.F2, sh.Fd(), sh.Disparity())

	sol, err := repro.MPDEQuasiPeriodic(b.Ckt, repro.MPDEOptions{N1: 48, N2: 24, Shear: sh})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("QPSS: %d unknowns, %d Newton iterations\n\n",
		sol.Stats.Unknowns, sol.Stats.NewtonIters)

	// The switch node over one PWM period (fast axis) — hard switching.
	swLine := make([]float64, sol.N1)
	for i := 0; i < sol.N1; i++ {
		swLine[i] = sol.At(i, 0)[b.SW]
	}
	s1, err := repro.NewSeries("v(sw) over one PWM period (V)", sol.T1Axis(), swLine)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(s1.ASCIIPlot(12, 64))

	// The output envelope over one beat period (slow axis).
	bb := sol.BasebandMean(b.Out)
	s2, err := repro.NewSeries("v(out) envelope over one beat period (V)", sol.T2Axis(), bb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(s2.ASCIIPlot(12, 64))

	mean := 0.0
	for _, v := range bb {
		mean += v
	}
	mean /= float64(len(bb))
	ac := make([]float64, len(bb))
	for i, v := range bb {
		ac[i] = v - mean
	}
	sp := repro.NewSpectrum(ac, sh.Td()/float64(len(bb)))
	amp, _ := sp.AmplitudeAt(b.Cfg.Fd)
	fmt.Printf("output: mean %.3f V, beat amplitude at fd: %.4f V (aggressor was %.2f V)\n",
		mean, amp, b.Cfg.VRip)
	fmt.Printf("beat rejection: %.1f dB\n", repro.DB(amp/b.Cfg.VRip))
}
