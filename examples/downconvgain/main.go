// Down-conversion gain and distortion (paper Section 3, "Using pure-tone
// driving excitations, we are also able to obtain down-conversion gain and
// distortion figures").
//
// The balanced mixer is driven by a pure RF tone at 2·f1 − fd; the MPDE
// quasi-periodic solution's differential baseband is Fourier-analysed to
// report conversion gain (fd line over RF amplitude) and baseband harmonic
// distortion, swept over RF drive level to expose gain compression.
//
// Run with: go run ./examples/downconvgain
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

func main() {
	fmt.Println("RF amp (V) | conv gain | gain (dB) |   HD2   |   HD3")
	fmt.Println("-----------+-----------+-----------+---------+---------")
	var warm []float64
	for _, rfAmp := range []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.4} {
		mix := repro.NewBalancedMixer(repro.BalancedMixerConfig{RFAmp: rfAmp})
		opt := repro.MPDEOptions{N1: 40, N2: 32, Shear: mix.Shear}
		if warm != nil {
			opt.X0 = warm
		}
		sol, err := repro.MPDEQuasiPeriodic(mix.Ckt, opt)
		if err != nil {
			log.Fatalf("rfAmp=%g: %v", rfAmp, err)
		}
		warm = sol.X
		bb := sol.DifferentialBaseband(mix.OutP, mix.OutM)
		dt := mix.Shear.Td() / float64(len(bb))
		g, err := repro.MeasureConversionGain(bb, dt, math.Abs(mix.Shear.Fd()), rfAmp)
		if err != nil {
			log.Fatalf("rfAmp=%g: %v", rfAmp, err)
		}
		fmt.Printf("  %8.3f | %9.4f | %9.2f | %7.4f | %7.4f\n",
			rfAmp, g.Ratio, g.DB, g.HD2, g.HD3)
	}
	fmt.Println()
	fmt.Println("Expected shape: near-constant small-signal gain at low drive,")
	fmt.Println("compressing (falling ratio, rising HD) as the RF drive grows.")
}
