// Quickstart: the paper's ideal mixing example (Section 2).
//
// Two tones at f1 = 1 GHz and f2 = f1 − 10 kHz drive an ideal multiplier.
// We show (a) the unsheared multi-time representation, which hides the
// difference frequency (Fig. 1), (b) the sheared representation, whose t2
// axis spans the 0.1 ms difference period and exposes it (Fig. 2), and
// (c) the MPDE quasi-periodic steady state of the multiplier-as-circuit,
// whose t1-averaged baseband is the 10 kHz difference tone of Eq. (6).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

func main() {
	f1 := 1e9
	f2 := f1 - 1e4 // closely spaced: Δf = 10 kHz
	sh := repro.NewShear(f1, f2, 1)
	fmt.Printf("tones: f1=%.4g Hz  f2=%.4g Hz  fd=%.4g Hz  disparity=%.0f\n",
		f1, f2, sh.Fd(), sh.Disparity())

	// The product waveform z(t) = cos(2πf1t)·cos(2πf2t) on the torus.
	prod := productWave{}

	un := repro.SampleUnsheared(prod, sh, 24, 48)
	shd := repro.SampleSheared(prod, sh, 24, 48)
	surfU, err := repro.NewSurface("Fig1: unsheared ẑ1(t1,t2)", un.T1, un.T2, un.Z)
	if err != nil {
		log.Fatal(err)
	}
	surfU.XLabel, surfU.YLabel = "t1(ns)", "t2(ns)"
	surfS, err := repro.NewSurface("Fig2: sheared ẑ2(t1,t2)", shd.T1, shd.T2, shd.Z)
	if err != nil {
		log.Fatal(err)
	}
	surfS.XLabel, surfS.YLabel = "t1(ns)", "t2(0..0.1ms)"
	fmt.Println(surfU.ASCIIHeatmap(16, 48))
	fmt.Println(surfS.ASCIIHeatmap(16, 48))

	// The same mixing as a circuit, solved with the MPDE method.
	mix := repro.NewIdealMixer(repro.IdealMixerConfig{F1: f1, F2: f2})
	sol, err := repro.MPDEQuasiPeriodic(mix.Ckt, repro.MPDEOptions{
		N1: 32, N2: 48, Shear: mix.Shear,
		DiffT1: repro.Order2, DiffT2: repro.Order2,
	})
	if err != nil {
		log.Fatal(err)
	}
	bb := sol.BasebandMean(mix.Out)
	t2 := sol.T2Axis()
	series, err := repro.NewSeries("baseband v(out) along t2", t2, bb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(series.ASCIIPlot(12, 64))

	// Verify against the analytic difference tone (paper Eq. 6): ½·cos(2π·fd·t2).
	maxErr := 0.0
	for j := range bb {
		want := 0.5 * math.Cos(2*math.Pi*math.Abs(sh.Fd())*t2[j])
		if e := math.Abs(bb[j] - want); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("baseband vs analytic ½·cos(2π·fd·t2): max error %.3e\n", maxErr)
	fmt.Printf("MPDE grid %dx%d, %d unknowns, %d Newton iterations\n",
		sol.N1, sol.N2, sol.Stats.Unknowns, sol.Stats.NewtonIters)
}

// productWave is ẑ_s(θ1,θ2) = cos(2πθ1)·cos(2πθ2), the paper's Eq. (8).
type productWave struct{}

func (productWave) Eval(t float64) float64 {
	return math.Cos(2*math.Pi*1e9*t) * math.Cos(2*math.Pi*(1e9-1e4)*t)
}

func (productWave) EvalTorus(th1, th2 float64) float64 {
	return math.Cos(2*math.Pi*th1) * math.Cos(2*math.Pi*th2)
}
