// Balanced LO-doubling down-conversion mixer (paper Section 3, Figs. 3–6).
//
// The lower source-coupled MOSFET pair doubles the 450 MHz LO; the doubled
// tail current feeds the upper differential pair driven by a bit-modulated
// RF carrier near 900 MHz. The MPDE quasi-periodic steady state on a 40×30
// sheared grid (the paper's grid) directly yields:
//
//   - Fig. 3: the multi-time differential output surface,
//   - Fig. 4: the baseband differential output — the demodulated bit stream,
//   - Fig. 5: the multi-time voltage at the MOSFET sources (tail), showing
//     the sharp doubled-LO waveform that defeats harmonic balance,
//   - Fig. 6: the reconstructed one-time waveform over 5 LO periods.
//
// Run with: go run ./examples/balancedmixer
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

func main() {
	bits := repro.PRBS7(0x4D, 8) // 8 bits per difference period
	mix := repro.NewBalancedMixer(repro.BalancedMixerConfig{Bits: bits})
	sh := mix.Shear
	fmt.Printf("LO f1 = %.4g Hz, RF ≈ %.6g Hz, fd = %.4g Hz (K = %d), disparity = %.0f\n",
		sh.F1, sh.F2, sh.Fd(), sh.K, sh.Disparity())
	fmt.Printf("bit pattern: %v\n\n", asBits(bits))

	sol, err := repro.MPDEQuasiPeriodic(mix.Ckt, repro.MPDEOptions{
		N1: 40, N2: 30, Shear: sh, // the paper's 40×30 = 1200-point grid
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("QPSS: %d unknowns, %d Newton iterations, continuation=%v\n\n",
		sol.Stats.Unknowns, sol.Stats.NewtonIters, sol.Stats.UsedContinuation)

	// Fig. 3: differential output surface.
	diff := sol.Differential(mix.OutP, mix.OutM)
	surf3, err := repro.NewSurface("Fig3: differential output (V)", sol.T1Axis(), sol.T2Axis(), diff)
	if err != nil {
		log.Fatal(err)
	}
	surf3.XLabel, surf3.YLabel = "LO t1", "baseband t2"
	fmt.Println(surf3.ASCIIHeatmap(16, 60))

	// Fig. 4: baseband differential output (the bit stream).
	bb := sol.DifferentialBaseband(mix.OutP, mix.OutM)
	s4, err := repro.NewSeries("Fig4: baseband differential output (V)", sol.T2Axis(), bb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(s4.ASCIIPlot(12, 60))

	// Eye check against the transmitted bits.
	ac := removeMean(bb)
	eye := repro.MeasureEye(ac, bits)
	if !eye.Open {
		eye = repro.MeasureEye(negate(ac), bits)
	}
	fmt.Printf("eye: open=%v  one-level ≥ %.4f V, zero-level ≤ %.4f V\n\n",
		eye.Open, eye.MinHigh, eye.MaxLow)

	// Fig. 5: multi-time voltage at the MOSFET sources (tail node) — the
	// doubler's sharp waveforms.
	tailSurf := sol.Surface(mix.Tail)
	surf5, err := repro.NewSurface("Fig5: voltage at MOSFET sources (V)", sol.T1Axis(), sol.T2Axis(), tailSurf)
	if err != nil {
		log.Fatal(err)
	}
	surf5.XLabel, surf5.YLabel = "LO t1", "baseband t2"
	fmt.Println(surf5.ASCIIHeatmap(16, 60))
	// Count the tail peaks within one LO period: doubling means two.
	peaks := countPeaks(column0(tailSurf))
	fmt.Printf("tail peaks per LO period: %d (2 = frequency doubling)\n\n", peaks)

	// Fig. 6: one-time reconstruction over 5 LO periods.
	t0 := 2.223e-6 // same window the paper plots
	ts, vs := sol.ReconstructOneTime(mix.Tail, t0, t0+5*sh.T1(), 300)
	s6, err := repro.NewSeries("Fig6: v(source) over 5 LO periods (V)", ts, vs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(s6.ASCIIPlot(12, 60))
}

func asBits(b []bool) []int {
	out := make([]int, len(b))
	for i, v := range b {
		if v {
			out[i] = 1
		}
	}
	return out
}

func removeMean(x []float64) []float64 {
	m := 0.0
	for _, v := range x {
		m += v
	}
	m /= float64(len(x))
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = v - m
	}
	return out
}

func negate(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = -v
	}
	return out
}

func column0(z [][]float64) []float64 {
	out := make([]float64, len(z))
	for i := range z {
		out[i] = z[i][0]
	}
	return out
}

func countPeaks(x []float64) int {
	n := len(x)
	count := 0
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	_ = math.Abs
	for i := 0; i < n; i++ {
		prev := x[(i-1+n)%n]
		next := x[(i+1)%n]
		if x[i] > prev && x[i] >= next && x[i] > mean {
			count++
		}
	}
	return count
}
