// Package repro is the public facade of the reproduction of
// "A Time-domain RF Steady-State Method for Closely Spaced Tones"
// (J. Roychowdhury, DAC 2002). It re-exports the library's main entry
// points so downstream users do not need to reach into internal packages:
//
//   - circuit construction (NewCircuit, the device builders on Circuit,
//     waveforms DC/Sine/ModulatedCarrier, and the SPICE-ish netlist parser),
//   - Analyze, the unified context-first analysis entry point: every
//     analysis — the paper's "qpss" and "envelope" methods next to the
//     "dc"/"transient"/"shooting"/"hb"/"ac"/"pac" baselines — is registered
//     under a name and driven through one Request/Result contract, with
//     cooperative cancellation via the context (the per-method wrappers
//     below remain as deprecated adapters),
//   - NewShear defining the difference-frequency time scale
//     fd = K·F1 − F2 of the paper's sheared grid, and
//   - Sweep, the concurrent batch engine that fans families of analyses
//     (QPSS, envelope, shooting, transient, HB) across a bounded worker
//     pool over parameter grids of tone spacing, drive amplitude and grid
//     size, with per-job cancellation and deterministic aggregation, and
//   - Serve, the HTTP simulation service that accepts decks with analysis
//     specs over JSON, multiplexes them onto the sweep engine behind a
//     content-addressed result cache, and streams per-job progress.
//
// A minimal session:
//
//	mix := repro.NewBalancedMixer(repro.BalancedMixerConfig{}) // LO-doubling mixer
//	res, err := repro.Analyze(ctx, repro.AnalysisRequest{
//	        Method:  "qpss",
//	        Circuit: mix.Ckt,
//	        Params:  repro.QPSSParams{N1: 40, N2: 30, Shear: mix.Shear},
//	})
//	sol := res.Raw().(*repro.MPDESolution)
//	bb := sol.DifferentialBaseband(mix.OutP, mix.OutM) // the down-converted bit stream
package repro

import (
	"context"
	"io"

	"repro/internal/ac"
	"repro/internal/analysis"
	"repro/internal/circuit"
	"repro/internal/ckts"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/hb"
	"repro/internal/netlist"
	"repro/internal/pac"
	"repro/internal/server"
	"repro/internal/shooting"
	"repro/internal/solver"
	"repro/internal/sweep"
	"repro/internal/transient"
)

// --- circuit construction ---------------------------------------------------

// Circuit is the flat MNA netlist container.
type Circuit = circuit.Circuit

// NewCircuit returns an empty circuit with the given title.
func NewCircuit(title string) *Circuit { return circuit.New(title) }

// Waveform types for independent sources.
type (
	// Waveform is any time-domain excitation.
	Waveform = device.Waveform
	// TorusWaveform is a bi-periodic excitation usable by MPDE/HB.
	TorusWaveform = device.TorusWaveform
	// DC is a constant source value.
	DC = device.DC
	// Sine is a (multi-)tone cosine declared on the torus.
	Sine = device.Sine
	// ModulatedCarrier is a bit-stream-modulated RF carrier (paper Eq. 14).
	ModulatedCarrier = device.ModulatedCarrier
	// Pulse is the SPICE trapezoidal pulse (transient-only).
	Pulse = device.Pulse
	// PWL is a piecewise-linear waveform (transient-only).
	PWL = device.PWL
	// Sum adds waveforms.
	Sum = device.Sum
	// MOSFET is the level-1 MOS model used by the mixer circuits.
	MOSFET = device.MOSFET
	// BJT is the Ebers–Moll bipolar model.
	BJT = device.BJT
	// TorusSquare is a smoothed square wave on the torus (PWM and hard
	// switching drives).
	TorusSquare = device.TorusSquare
)

// ParseNetlist reads a SPICE-flavoured deck (see internal/netlist for the
// dialect) and returns the parsed deck with its circuit and tone
// declarations.
func ParseNetlist(r io.Reader) (*netlist.Deck, error) { return netlist.Parse(r) }

// ParseNetlistString parses a deck held in a string.
func ParseNetlistString(s string) (*netlist.Deck, error) { return netlist.ParseString(s) }

// --- the unified analysis API -------------------------------------------------

// AnalysisRequest describes one analysis invocation for Analyze: the
// circuit under test, the registry method name, its typed parameters, and
// the common knobs (Newton options, probes, warm-start seed, progress
// hook). See internal/analysis for the full contract.
type AnalysisRequest = analysis.Request

// AnalysisResult is the uniform view of a finished analysis: node
// waveforms, spectra, solver stats and measurement extraction.
type AnalysisResult = analysis.Result

// AnalysisStats is the uniform solver-work report (Result.Stats).
type AnalysisStats = analysis.Stats

// AnalysisProbe selects a measured unknown (single-ended when M < 0).
type AnalysisProbe = analysis.Probe

// AnalysisWaveform is a sampled record of one probed output.
type AnalysisWaveform = analysis.Waveform

// AnalysisLine is one reported spectral mix.
type AnalysisLine = analysis.Line

// AnalysisMeasurement is the uniform swing/conversion-gain extraction.
type AnalysisMeasurement = analysis.Measurement

// AnalysisProgress is one coarse progress notification.
type AnalysisProgress = analysis.Progress

// AnalysisAccuracy is the uniform adaptive-control tolerance pair
// (reltol/abstol) shared by the envelope LTE step controller, QPSS/HB
// automatic grid sizing, and transient resolution refinement. The zero
// value keeps the historical fixed grids and steps.
type AnalysisAccuracy = analysis.Accuracy

// Typed parameter structs for AnalysisRequest.Params, one per registered
// analysis.
type (
	// QPSSParams configures the paper's "qpss" method.
	QPSSParams = analysis.QPSSParams
	// EnvelopeParams configures "envelope" following.
	EnvelopeParams = analysis.EnvelopeParams
	// ShootingParams configures "shooting".
	ShootingParams = analysis.ShootingParams
	// TransientParams configures "transient".
	TransientParams = analysis.TransientParams
	// HBParams configures "hb".
	HBParams = analysis.HBParams
	// ACParams configures "ac".
	ACParams = analysis.ACParams
	// PACParams configures "pac".
	PACParams = analysis.PACParams
	// DCParams configures "dc".
	DCParams = analysis.DCParams
)

// Analyze runs one analysis through the name-keyed registry — the single
// context-first entry point every dispatcher (sweep, HTTP service, deck
// directives, CLI) is built on. Cancelling ctx interrupts an in-flight
// Newton solve cooperatively, and an already-canceled context returns
// ctx.Err() before any assembly work:
//
//	sol, err := repro.Analyze(ctx, repro.AnalysisRequest{
//	        Method:  "qpss",
//	        Circuit: mix.Ckt,
//	        Params:  repro.QPSSParams{N1: 40, N2: 30, Shear: mix.Shear},
//	})
func Analyze(ctx context.Context, req AnalysisRequest) (AnalysisResult, error) {
	return analysis.Run(ctx, req)
}

// AnalysisNames lists the registered analyses, sorted.
func AnalysisNames() []string { return analysis.Names() }

// --- the paper's method -----------------------------------------------------

// Shear is the difference-frequency time-scale map (paper Section 2).
type Shear = core.Shear

// NewShear builds the map for tones F1 (fast/LO) and F2 (RF) with internal
// harmonic K: the difference frequency is fd = K·F1 − F2.
func NewShear(f1, f2 float64, k int) Shear { return Shear{F1: f1, F2: f2, K: k} }

// MPDEOptions configures the quasi-periodic MPDE solve.
type MPDEOptions = core.Options

// MPDESolution is the converged multi-time steady state.
type MPDESolution = core.Solution

// MPDEGridSpectrum is the 2-D Fourier view of one unknown's multi-time
// surface (mixes k1·F1 + k2·fd).
type MPDEGridSpectrum = core.GridSpectrum

// DiffOrder selects the finite-difference order on the MPDE grid.
type DiffOrder = core.DiffOrder

// Difference orders for the MPDE grid.
const (
	Order1 = core.Order1
	Order2 = core.Order2
)

// MPDEQuasiPeriodic computes the quasi-periodic steady state on the sheared
// bi-periodic grid — the paper's headline method.
//
// Deprecated: use Analyze(ctx, AnalysisRequest{Method: "qpss", Params:
// QPSSParams{...}}) — the context-first entry point with cooperative
// cancellation. This wrapper runs under context.Background().
func MPDEQuasiPeriodic(ckt *Circuit, opt MPDEOptions) (*MPDESolution, error) {
	return core.QPSS(context.Background(), ckt, opt)
}

// MPDEAccuracyOptions configures tolerance-driven automatic grid sizing for
// MPDEQuasiPeriodicAdaptive.
type MPDEAccuracyOptions = core.AccuracyOptions

// MPDEQuasiPeriodicAdaptive computes the quasi-periodic steady state with
// automatic fast-grid sizing: solve coarse, measure the spectral tail of
// the converged solution, refine the aliasing axes (warm-starting from the
// interpolated coarse grid) until the tail passes acc.RelTol, stalls at the
// stimulus's own spectral floor, or hits a cap. With acc.RelTol = 0 it is
// exactly the fixed-grid solve.
func MPDEQuasiPeriodicAdaptive(ctx context.Context, ckt *Circuit, opt MPDEOptions, acc MPDEAccuracyOptions) (*MPDESolution, error) {
	return core.AdaptiveQPSS(ctx, ckt, opt, acc)
}

// MPDEEnvelopeOptions configures slow-time envelope following.
type MPDEEnvelopeOptions = core.EnvelopeOptions

// MPDEEnvelopeResult is a slow-time trajectory of fast-periodic lines.
type MPDEEnvelopeResult = core.EnvelopeResult

// MPDEEnvelope marches the MPDE in the difference-frequency time scale
// without imposing slow periodicity (envelope transients).
//
// Deprecated: use Analyze(ctx, AnalysisRequest{Method: "envelope", Params:
// EnvelopeParams{...}}). This wrapper runs under context.Background().
func MPDEEnvelope(ckt *Circuit, opt MPDEEnvelopeOptions) (*MPDEEnvelopeResult, error) {
	return core.EnvelopeFollow(context.Background(), ckt, opt)
}

// --- baseline analyses --------------------------------------------------------

// DCOptions configures operating-point analysis.
type DCOptions = transient.DCOptions

// DCOperatingPoint solves f(x) + b = 0 with Newton, source stepping and gmin
// stepping fallbacks.
//
// Deprecated: use Analyze(ctx, AnalysisRequest{Method: "dc", Params:
// DCParams{...}}). This wrapper runs under context.Background().
func DCOperatingPoint(ckt *Circuit, opt DCOptions) ([]float64, error) {
	x, _, err := transient.DC(context.Background(), ckt, opt)
	return x, err
}

// TransientOptions configures time-stepping simulation.
type TransientOptions = transient.Options

// TransientResult is a stored trajectory.
type TransientResult = transient.Result

// TransientMethod selects the integration formula.
type TransientMethod = transient.Method

// Integration methods.
const (
	BE    = transient.BE
	TRAP  = transient.TRAP
	GEAR2 = transient.GEAR2
)

// Transient integrates the circuit equations over time — the "traditional
// time-stepping" baseline of the paper.
//
// Deprecated: use Analyze(ctx, AnalysisRequest{Method: "transient",
// Params: TransientParams{...}}). This wrapper runs under
// context.Background().
func Transient(ckt *Circuit, opt TransientOptions) (*TransientResult, error) {
	return transient.Run(context.Background(), ckt, opt)
}

// ShootingOptions configures periodic steady-state shooting.
type ShootingOptions = shooting.Options

// ShootingResult is a converged periodic orbit.
type ShootingResult = shooting.Result

// ShootingPSS computes a single-tone periodic steady state by the
// Aprille–Trick shooting method — the paper's CPU-time comparison baseline.
//
// Deprecated: use Analyze(ctx, AnalysisRequest{Method: "shooting", Params:
// ShootingParams{...}}). This wrapper runs under context.Background().
func ShootingPSS(ckt *Circuit, opt ShootingOptions) (*ShootingResult, error) {
	return shooting.PSS(context.Background(), ckt, opt)
}

// HBOptions configures two-tone harmonic balance.
type HBOptions = hb.Options

// HBSolution is a converged HB steady state.
type HBSolution = hb.Solution

// HarmonicBalance runs box-truncated two-tone harmonic balance — the
// frequency-domain comparator whose weakness on switching waveforms
// motivates the paper.
//
// Deprecated: use Analyze(ctx, AnalysisRequest{Method: "hb", Params:
// HBParams{...}}). This wrapper runs under context.Background().
func HarmonicBalance(ckt *Circuit, opt HBOptions) (*HBSolution, error) {
	return hb.Solve(context.Background(), ckt, opt)
}

// NewtonOptions exposes the shared nonlinear-solver configuration.
type NewtonOptions = solver.Options

// ACOptions configures small-signal AC analysis.
type ACOptions = ac.Options

// ACResult holds the swept phasor response.
type ACResult = ac.Result

// ACAnalyze linearises the circuit at its bias point and sweeps
// (G + jωC)·X = B over frequency.
//
// Deprecated: use Analyze(ctx, AnalysisRequest{Method: "ac", Params:
// ACParams{...}}). This wrapper runs under context.Background().
func ACAnalyze(ckt *Circuit, opt ACOptions) (*ACResult, error) {
	return ac.Analyze(context.Background(), ckt, opt)
}

// ACLogSweep returns log-spaced frequencies for ACAnalyze.
func ACLogSweep(f0, f1 float64, nPts int) []float64 { return ac.LogSweep(f0, f1, nPts) }

// PACOptions configures periodic AC (conversion-matrix) analysis.
type PACOptions = pac.Options

// PACResult holds periodic small-signal transfer functions.
type PACResult = pac.Result

// PACAnalyze linearises around a periodic steady state and computes the
// small-signal conversion gains from a stimulus at fs to every LO sideband
// fs + k·f0.
//
// Deprecated: use Analyze(ctx, AnalysisRequest{Method: "pac", Params:
// PACParams{...}}). This wrapper runs under context.Background().
func PACAnalyze(ckt *Circuit, opt PACOptions) (*PACResult, error) {
	return pac.Analyze(context.Background(), ckt, opt)
}

// --- concurrent sweeps --------------------------------------------------------

// SweepSpec describes a batch of analyses over a parameter grid.
type SweepSpec = sweep.Spec

// SweepResult is the deterministic aggregate of a sweep.
type SweepResult = sweep.Result

// SweepGrid is a cartesian grid over tone spacing, drive amplitude and grid
// sizes.
type SweepGrid = sweep.Grid

// SweepPoint is one grid vertex.
type SweepPoint = sweep.Point

// SweepTarget is the circuit under test at one point.
type SweepTarget = sweep.Target

// SweepBuilder constructs targets from points.
type SweepBuilder = sweep.Builder

// SweepMethod names an analysis the engine can run.
type SweepMethod = sweep.Method

// SweepJob identifies one scheduled analysis.
type SweepJob = sweep.Job

// SweepJobResult carries one job's measurements.
type SweepJobResult = sweep.JobResult

// SweepStatus classifies a job outcome.
type SweepStatus = sweep.Status

// The analyses a sweep can fan out.
const (
	SweepQPSS      = sweep.QPSS
	SweepEnvelope  = sweep.Envelope
	SweepShooting  = sweep.Shooting
	SweepTransient = sweep.Transient
	SweepHB        = sweep.HB
)

// Job outcomes in SweepJobResult.Status.
const (
	SweepStatusOK       = sweep.StatusOK
	SweepStatusFailed   = sweep.StatusFailed
	SweepStatusCanceled = sweep.StatusCanceled
	SweepStatusTimeout  = sweep.StatusTimeout
)

// Sweep runs the spec's jobs across a bounded worker pool under ctx.
// Cancelling ctx interrupts in-flight Newton solves and returns promptly
// with partial results; see internal/sweep for the determinism guarantees.
func Sweep(ctx context.Context, spec SweepSpec) (*SweepResult, error) {
	return sweep.Run(ctx, spec)
}

// --- the simulation service ---------------------------------------------------

// ServerOptions configures the HTTP simulation service: concurrency and
// queue bounds, the content-addressed result cache, drain behaviour, and
// the spool directory for flushed results.
type ServerOptions = server.Options

// Serve runs the HTTP simulation service on addr until ctx is canceled,
// then drains: running jobs get ServerOptions.DrainTimeout to finish,
// stragglers are interrupted cooperatively, and their partial sweep
// results are still flushed. See internal/server for the API surface
// (submit decks, SSE progress streams, /metrics).
func Serve(ctx context.Context, addr string, opt ServerOptions) error {
	return server.Serve(ctx, addr, opt)
}

// --- canonical circuits -------------------------------------------------------

// BalancedMixerConfig parameterises the paper's balanced LO-doubling mixer.
type BalancedMixerConfig = ckts.BalancedMixerConfig

// BalancedMixer is the assembled mixer with probe indices.
type BalancedMixer = ckts.BalancedMixer

// NewBalancedMixer builds the paper's Section-3 circuit.
func NewBalancedMixer(cfg BalancedMixerConfig) *BalancedMixer { return ckts.NewBalancedMixer(cfg) }

// UnbalancedMixerConfig parameterises the single-device switching mixer.
type UnbalancedMixerConfig = ckts.UnbalancedMixerConfig

// UnbalancedMixer is the assembled unbalanced mixer.
type UnbalancedMixer = ckts.UnbalancedMixer

// NewUnbalancedMixer builds the unbalanced switching mixer.
func NewUnbalancedMixer(cfg UnbalancedMixerConfig) *UnbalancedMixer {
	return ckts.NewUnbalancedMixer(cfg)
}

// IdealMixerConfig parameterises the behavioural multiplier mixer.
type IdealMixerConfig = ckts.IdealMixerConfig

// IdealMixer is the assembled ideal mixer.
type IdealMixer = ckts.IdealMixer

// NewIdealMixer builds the paper's ideal mixing example as a circuit.
func NewIdealMixer(cfg IdealMixerConfig) *IdealMixer { return ckts.NewIdealMixer(cfg) }

// BuckBeatConfig parameterises the power-conversion beat-interference
// example from the paper's conclusion.
type BuckBeatConfig = ckts.BuckBeatConfig

// BuckBeat is the assembled PWM buck converter with an aggressor tone.
type BuckBeat = ckts.BuckBeat

// NewBuckBeat builds the buck converter with a closely spaced aggressor on
// its input rail.
func NewBuckBeat(cfg BuckBeatConfig) *BuckBeat { return ckts.NewBuckBeat(cfg) }
